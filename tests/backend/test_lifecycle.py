"""Idempotent close() and context-manager protocol on the backend tier.

Shard workers close their backend from ``finally`` blocks *and* on
orderly shutdown, so double close must be a no-op everywhere.
"""

from __future__ import annotations

from repro import BackendDatabase, CostModel
from repro.backend.columnar import MmapColumnarStore
from repro.cache.store import ChunkCache
from repro.cache.replacement import make_policy


def test_backend_close_is_idempotent(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    assert not backend.closed
    backend.close()
    assert backend.closed
    backend.close()
    assert backend.closed


def test_backend_context_manager(tiny_schema, tiny_facts):
    with BackendDatabase(tiny_schema, tiny_facts, CostModel()) as backend:
        assert backend.base_size_bytes > 0
        assert not backend.closed
    assert backend.closed


def test_mmap_store_close_is_idempotent(tiny_schema, tiny_facts, tmp_path):
    path = str(tmp_path / "cube.rcol")
    backend = BackendDatabase(
        tiny_schema, tiny_facts, CostModel(), store="mmap", store_path=path
    )
    backend.close()
    store = MmapColumnarStore.open(path)
    arrays = store.get(0)
    assert not store.closed
    store.close()
    assert store.closed
    store.close()
    # Arrays handed out before close stay readable (memmap holds the
    # mapping until the views die).
    assert arrays is not None


def test_mmap_store_context_manager(tiny_schema, tiny_facts, tmp_path):
    path = str(tmp_path / "cube.rcol")
    BackendDatabase(
        tiny_schema, tiny_facts, CostModel(), store="mmap", store_path=path
    ).close()
    with MmapColumnarStore.open(path) as store:
        assert not store.closed
    assert store.closed


def test_chunk_cache_close_is_idempotent(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    cache = ChunkCache(
        capacity_bytes=1 << 20,
        policy=make_policy("two_level"),
        bytes_per_tuple=40,
    )
    chunk = next(iter(backend.compute_level(tiny_schema.base_level)))
    cache.insert(chunk, benefit=1.0)
    with cache:
        pass
    cache.close()
    backend.close()
