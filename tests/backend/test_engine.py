"""Backend engine tests: chunked storage and batched chunk requests."""

from __future__ import annotations

import pytest

from repro import BackendDatabase, CostModel, generate_fact_table
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from tests.helpers import direct_aggregate, expected_cells_in_chunk


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def test_cluster_covers_all_facts(schema, tiny_backend, tiny_facts):
    total = sum(
        tiny_backend.base_chunk(n).size_tuples
        for n in tiny_backend.base_chunk_numbers()
    )
    assert total == tiny_facts.num_tuples
    assert tiny_backend.num_tuples == tiny_facts.num_tuples
    assert tiny_backend.base_size_bytes == tiny_facts.size_bytes


def test_base_chunks_hold_only_their_cells(schema, tiny_backend):
    for number in tiny_backend.base_chunk_numbers():
        chunk = tiny_backend.base_chunk(number)
        spans = schema.chunks.chunk_cell_spans(schema.base_level, number)
        for d, (lo, hi) in enumerate(spans):
            assert chunk.coords[d].min() >= lo
            assert chunk.coords[d].max() < hi


def test_missing_base_chunk_is_empty(schema, tiny_facts):
    # Build a backend whose data occupies few cells, then probe an
    # unoccupied chunk.
    facts = generate_fact_table(schema, num_tuples=1, seed=9)
    backend = BackendDatabase(schema, facts)
    occupied = set(backend.base_chunk_numbers())
    assert len(occupied) == 1
    empty_number = next(
        n
        for n in range(schema.num_chunks(schema.base_level))
        if n not in occupied
    )
    assert backend.base_chunk(empty_number).is_empty


@pytest.mark.parametrize("level", [(0, 0, 0), (1, 1, 0), (2, 1, 1)])
def test_fetch_matches_direct_aggregation(level, schema, tiny_backend, tiny_facts):
    truth = direct_aggregate(tiny_facts, level)
    requests = [(level, n) for n in range(schema.num_chunks(level))]
    chunks, stats = tiny_backend.fetch(requests)
    assert stats.chunks_requested == len(requests)
    for chunk in chunks:
        expected = expected_cells_in_chunk(schema, truth, level, chunk.number)
        assert chunk.cell_dict() == pytest.approx(expected)


def test_fetch_accounting(schema, tiny_backend):
    before = tiny_backend.totals.requests
    chunks, stats = tiny_backend.fetch([((0, 0, 0), 0)])
    assert tiny_backend.totals.requests == before + 1
    assert stats.tuples_scanned == tiny_backend.num_tuples
    assert stats.tuples_returned == 1
    model = tiny_backend.cost_model
    assert stats.simulated_ms == pytest.approx(
        model.backend_request_ms(stats.tuples_scanned, stats.tuples_returned)
    )
    assert stats.total_ms >= stats.simulated_ms
    assert chunks[0].compute_cost > model.connection_overhead_ms * 0.99


def test_fetch_empty_request(tiny_backend):
    chunks, stats = tiny_backend.fetch([])
    assert chunks == []
    assert stats.simulated_ms == 0.0


def test_fetch_batches_share_one_connection(schema, tiny_backend):
    level = (1, 1, 1)
    requests = [(level, n) for n in range(schema.num_chunks(level))]
    _, batched = tiny_backend.fetch(requests)
    singles = 0.0
    for request in requests:
        _, stats = tiny_backend.fetch([request])
        singles += stats.simulated_ms
    overhead = tiny_backend.cost_model.connection_overhead_ms
    assert singles >= batched.simulated_ms + (len(requests) - 1) * overhead * 0.99


def test_compute_level(schema, tiny_backend, tiny_facts):
    chunks = tiny_backend.compute_level((0, 0, 0))
    assert len(chunks) == 1
    assert chunks[0].total() == pytest.approx(tiny_facts.total())


def test_schema_mismatch_rejected(schema):
    from repro.schema import CubeSchema, Dimension

    other = CubeSchema(
        [Dimension.flat("A", 4, 2), Dimension.flat("B", 2, 1)],
        measure="Units",
    )
    facts = generate_fact_table(other, num_tuples=10, seed=1)
    with pytest.raises(ReproError, match="different schema"):
        BackendDatabase(schema, facts)


def test_equal_schema_different_instance_accepted(schema, tiny_facts):
    # Regression: schemas used to be compared by object identity, so a
    # separately constructed (but identical) schema was rejected here.
    facts = generate_fact_table(apb_tiny_schema(), num_tuples=10, seed=1)
    assert facts.schema is not schema
    backend = BackendDatabase(schema, facts)
    assert backend.num_tuples == facts.num_tuples


def test_custom_cost_model_used(tiny_schema, tiny_facts):
    model = CostModel(connection_overhead_ms=123.0)
    backend = BackendDatabase(tiny_schema, tiny_facts, model)
    _, stats = backend.fetch([((0, 0, 0), 0)])
    assert stats.simulated_ms >= 123.0
