"""Fact-table generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_fact_table
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def test_deterministic_for_same_seed(schema):
    a = generate_fact_table(schema, num_tuples=100, seed=5)
    b = generate_fact_table(schema, num_tuples=100, seed=5)
    assert a.total() == b.total()
    for d in range(schema.ndims):
        assert np.array_equal(a.coords[d], b.coords[d])


def test_different_seeds_differ(schema):
    a = generate_fact_table(schema, num_tuples=100, seed=5)
    b = generate_fact_table(schema, num_tuples=100, seed=6)
    assert a.total() != b.total()


def test_cells_are_unique_and_in_range(schema):
    facts = generate_fact_table(schema, num_tuples=500, seed=1)
    shape = schema.chunks.cell_shape(schema.base_level)
    flat = np.ravel_multi_index(facts.coords, shape)
    assert len(np.unique(flat)) == len(flat)
    for d, card in enumerate(shape):
        assert facts.coords[d].min() >= 0
        assert facts.coords[d].max() < card


def test_duplicates_merge_preserving_total(schema):
    # Base cube has 16 cells; 500 raw tuples must merge heavily.
    facts = generate_fact_table(schema, num_tuples=500, seed=1)
    assert facts.num_tuples <= 16
    assert facts.counts.sum() == 500


def test_values_positive(schema):
    facts = generate_fact_table(schema, num_tuples=200, seed=2)
    assert np.all(facts.values > 0)


def test_size_bytes(schema):
    facts = generate_fact_table(schema, num_tuples=100, seed=3)
    assert facts.size_bytes == facts.num_tuples * schema.bytes_per_tuple


def test_skew_concentrates_low_ordinals():
    from repro.schema import apb_small_schema

    schema = apb_small_schema()
    uniform = generate_fact_table(schema, num_tuples=20_000, seed=7, skew=0.0)
    skewed = generate_fact_table(schema, num_tuples=20_000, seed=7, skew=0.8)
    d = 0  # Product: base cardinality 96
    assert skewed.coords[d].mean() < uniform.coords[d].mean() * 0.7


def test_invalid_parameters(schema):
    with pytest.raises(ReproError):
        generate_fact_table(schema, num_tuples=0)
    with pytest.raises(ReproError):
        generate_fact_table(schema, num_tuples=10, skew=1.0)
    with pytest.raises(ReproError):
        generate_fact_table(schema, num_tuples=10, skew=-0.1)
    with pytest.raises(ReproError, match="mode"):
        generate_fact_table(schema, num_tuples=10, mode="bogus")
    with pytest.raises(ReproError, match="combo_density"):
        generate_fact_table(
            schema, num_tuples=10, mode="clustered", combo_density=0.0
        )


class TestClusteredMode:
    def test_structure_dense_within_combos(self):
        """Every sampled Product x Customer combo is (almost) fully dense
        over the remaining dimensions."""
        from repro.schema import apb_small_schema

        schema = apb_small_schema()
        facts = generate_fact_table(
            schema,
            num_tuples=0,  # ignored in clustered mode
            seed=11,
            mode="clustered",
            combo_density=0.5,
            cell_fill=1.0,
        )
        cards = [d.cardinality(d.height) for d in schema.dimensions]
        combos = np.unique(facts.coords[0] * cards[1] + facts.coords[1])
        dense_cells = cards[2] * cards[3] * cards[4]
        # cell_fill=1.0: exactly every dense cell per combo is present.
        assert facts.num_tuples == len(combos) * dense_cells
        expected_combos = round(cards[0] * cards[1] * 0.5)
        assert len(combos) == expected_combos

    def test_cell_fill_thins_combos(self):
        from repro.schema import apb_small_schema

        schema = apb_small_schema()
        full = generate_fact_table(
            schema, 0, seed=11, mode="clustered", cell_fill=1.0
        )
        thinned = generate_fact_table(
            schema, 0, seed=11, mode="clustered", cell_fill=0.5
        )
        assert thinned.num_tuples < full.num_tuples * 0.6

    def test_deterministic(self):
        from repro.schema import apb_small_schema

        schema = apb_small_schema()
        a = generate_fact_table(schema, 0, seed=3, mode="clustered")
        b = generate_fact_table(schema, 0, seed=3, mode="clustered")
        assert a.total() == b.total()
        assert a.num_tuples == b.num_tuples

    def test_needs_three_dimensions(self):
        from repro.schema import CubeSchema, Dimension

        schema = CubeSchema(
            [Dimension.flat("A", 4, 2), Dimension.flat("B", 4, 2)]
        )
        with pytest.raises(ReproError, match="3 dimensions"):
            generate_fact_table(schema, 0, mode="clustered")

    def test_coords_in_range(self, schema):
        facts = generate_fact_table(schema, 0, seed=5, mode="clustered")
        shape = schema.chunks.cell_shape(schema.base_level)
        for d, card in enumerate(shape):
            assert facts.coords[d].min() >= 0
            assert facts.coords[d].max() < card


class TestExactSizes:
    def test_exact_matches_reality_everywhere(self, schema):
        from repro.core.sizes import SizeEstimator
        from tests.helpers import direct_aggregate

        facts = generate_fact_table(schema, num_tuples=200, seed=8)
        sizes = SizeEstimator.exact(schema, facts)
        for level in schema.all_levels():
            truth = len(direct_aggregate(facts, level))
            assert sizes.level_tuples(level) == pytest.approx(truth)

    def test_exact_chunk_sizes_sum_to_level(self, schema):
        from repro.core.sizes import SizeEstimator

        facts = generate_fact_table(schema, num_tuples=200, seed=8)
        sizes = SizeEstimator.exact(schema, facts)
        for level in schema.all_levels():
            total = sum(
                sizes.chunk_tuples(level, n)
                for n in range(schema.num_chunks(level))
            )
            assert total == pytest.approx(sizes.level_tuples(level))


class TestMergeFactTables:
    def test_merge_equals_backend_after_appends(self, schema):
        from repro import BackendDatabase
        from repro.backend.generator import merge_fact_tables

        parts = [
            generate_fact_table(schema, num_tuples=n, seed=s)
            for n, s in [(200, 1), (60, 2), (40, 3)]
        ]
        merged = merge_fact_tables(parts)
        backend = BackendDatabase(schema, parts[0])
        for part in parts[1:]:
            backend.append(part)
        rebuilt = BackendDatabase(schema, merged)
        assert backend.num_tuples == rebuilt.num_tuples
        for level in schema.all_levels():
            for number in range(schema.num_chunks(level)):
                a = backend.compute_chunk(level, number)
                b = rebuilt.compute_chunk(level, number)
                # Exact ==: integer-valued measures, additive merge.
                assert a.cell_dict() == b.cell_dict(), (level, number)

    def test_merge_sums_counts_and_extras(self):
        from repro.backend.generator import merge_fact_tables
        from repro.schema import CubeSchema, Dimension

        schema = CubeSchema(
            [Dimension.flat("A", 4, 2), Dimension.flat("B", 2, 1)],
            measure=["Units", "Dollars"],
        )
        a = generate_fact_table(schema, num_tuples=50, seed=1)
        b = generate_fact_table(schema, num_tuples=50, seed=2)
        merged = merge_fact_tables([a, b])
        assert merged.values.sum() == a.values.sum() + b.values.sum()
        assert merged.counts.sum() == a.counts.sum() + b.counts.sum()
        assert merged.extras[0].sum() == pytest.approx(
            a.extras[0].sum() + b.extras[0].sum()
        )
        shape = schema.chunks.cell_shape(schema.base_level)
        flat = np.ravel_multi_index(merged.coords, shape)
        assert len(np.unique(flat)) == merged.num_tuples

    def test_single_part_is_identity(self, schema):
        from repro.backend.generator import merge_fact_tables

        facts = generate_fact_table(schema, num_tuples=100, seed=4)
        merged = merge_fact_tables([facts])
        assert merged.num_tuples == facts.num_tuples
        assert merged.total() == facts.total()

    def test_empty_and_mismatched_parts_rejected(self, schema):
        from repro.backend.generator import merge_fact_tables
        from repro.schema import CubeSchema, Dimension

        with pytest.raises(ReproError, match="at least one"):
            merge_fact_tables([])
        other = CubeSchema(
            [Dimension.flat("A", 4, 2), Dimension.flat("B", 2, 1)],
            measure="Units",
        )
        with pytest.raises(ReproError, match="different schemas"):
            merge_fact_tables([
                generate_fact_table(schema, num_tuples=10, seed=1),
                generate_fact_table(other, num_tuples=10, seed=1),
            ])
