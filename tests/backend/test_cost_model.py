"""Cost model arithmetic tests."""

from __future__ import annotations

import pytest

from repro.backend.cost_model import CostModel


def test_backend_request_components():
    model = CostModel(
        connection_overhead_ms=10.0,
        scan_ms_per_tuple=0.5,
        transfer_ms_per_tuple=0.25,
    )
    assert model.backend_request_ms(0, 0) == pytest.approx(10.0)
    assert model.backend_request_ms(100, 8) == pytest.approx(
        10.0 + 50.0 + 2.0
    )


def test_aggregation_linear_in_tuples():
    model = CostModel(cache_agg_ms_per_tuple=0.01)
    assert model.aggregation_ms(0) == 0.0
    assert model.aggregation_ms(1000) == pytest.approx(10.0)


def test_backend_beats_cache_by_design_regime():
    """With defaults, a typical medium chunk is much cheaper to aggregate
    in cache than to re-fetch: the ratio the paper reports is ~8x."""
    model = CostModel()
    tuples = 2000
    backend = model.backend_request_ms(tuples, tuples // 4)
    cache = model.aggregation_ms(tuples)
    assert backend / cache > 4


def test_frozen():
    model = CostModel()
    with pytest.raises(AttributeError):
        model.connection_overhead_ms = 5.0  # type: ignore[misc]
