"""Formatting tests: every experiment artifact renders tables (and, for
the figures, ASCII charts) without touching the paper's numbers."""

from __future__ import annotations

import pytest

from repro.harness.config import quick_config
from repro.harness.streams import run_policy_comparison, run_scheme_comparison


@pytest.fixture(scope="module")
def config():
    return quick_config()


def test_fig7_includes_chart(config):
    text = run_policy_comparison(config).format_fig7()
    assert "Figure 7" in text
    assert "█" in text or "▓" in text  # the bar chart


def test_fig8_includes_chart(config):
    text = run_policy_comparison(config).format_fig8()
    assert "Figure 8" in text
    assert "ms" in text


def test_fig9_includes_chart_with_all_schemes(config):
    text = run_scheme_comparison(config).format_fig9()
    for scheme in ("noagg", "esm", "vcmc"):
        assert scheme in text
    assert "█" in text


def test_fig10_breakdown_columns(config):
    text = run_scheme_comparison(config).format_fig10()
    for column in ("Lookup ms", "Aggregate ms", "Update ms", "Hits"):
        assert column in text


def test_table4_has_speedup_row(config):
    text = run_scheme_comparison(config).format_table4()
    assert "Speedup factor (VCMC over ESM)" in text
    assert "% of Complete Hits" in text


def test_cache_labels_used_in_figures(config):
    text = run_policy_comparison(config).format_fig7()
    for fraction in config.cache_fractions:
        assert config.cache_label(fraction) in text
