"""CSV export tests."""

from __future__ import annotations

import csv

import pytest

from repro.harness.config import ExperimentConfig, quick_config
from repro.harness.export import (
    export_policy_comparison,
    export_scheme_comparison,
    export_table1,
)
from repro.harness.streams import run_policy_comparison, run_scheme_comparison
from repro.harness.table1 import run_table1


@pytest.fixture(scope="module")
def config():
    return quick_config()


def read_csv(path):
    with path.open() as handle:
        return list(csv.DictReader(handle))


def test_policy_export(config, tmp_path):
    result = run_policy_comparison(config)
    (path,) = export_policy_comparison(result, tmp_path)
    rows = read_csv(path)
    assert len(rows) == 2 * len(config.cache_fractions)
    assert {row["policy"] for row in rows} == {"benefit", "two_level"}
    for row in rows:
        assert 0.0 <= float(row["complete_hit_ratio"]) <= 1.0
        assert float(row["avg_ms"]) >= 0.0


def test_scheme_export(config, tmp_path):
    result = run_scheme_comparison(config)
    overview, breakup = export_scheme_comparison(result, tmp_path)
    rows = read_csv(overview)
    assert {row["strategy"] for row in rows} == {"noagg", "esm", "vcmc"}
    detail = read_csv(breakup)
    assert {row["strategy"] for row in detail} == {"esm", "vcmc"}
    for row in detail:
        total = float(row["hit_total_ms"])
        parts = (
            float(row["hit_lookup_ms"])
            + float(row["hit_aggregate_ms"])
            + float(row["hit_update_ms"])
        )
        # Each part is rounded to 4 decimals in the CSV.
        assert total == pytest.approx(parts, abs=2e-3)


def test_table1_export(config, tmp_path):
    result = run_table1(
        config,
        esmc_preloaded_config=ExperimentConfig(
            schema_name="apb_tiny", num_tuples=100
        ),
    )
    (path,) = export_table1(result, tmp_path)
    rows = read_csv(path)
    assert {row["cache_state"] for row in rows} == {"empty", "preloaded"}
    assert {row["algorithm"] for row in rows} == {"esm", "esmc", "vcm", "vcmc"}
    for row in rows:
        assert float(row["min_ms"]) <= float(row["avg_ms"]) <= float(
            row["max_ms"]
        )
