"""Locality-sweep harness tests (quick config)."""

from __future__ import annotations

import pytest

from repro.harness.config import quick_config
from repro.harness.locality import (
    LOCALITY_POINTS,
    mix_for_locality,
    run_locality_sweep,
)


def test_mix_for_locality_sums_to_one():
    for locality in (0.0, 0.3, 0.9):
        mix = mix_for_locality(locality)
        total = mix.drill_down + mix.roll_up + mix.proximity + mix.random
        assert total == pytest.approx(1.0)
        assert mix.random == pytest.approx(1.0 - locality)


def test_sweep_structure():
    config = quick_config()
    result = run_locality_sweep(config)
    assert [p.locality for p in result.points] == list(LOCALITY_POINTS)
    for point in result.points:
        assert set(point.hit_ratio) == {"esm", "vcmc"}
        assert 0.0 <= point.hit_ratio["vcmc"] <= 1.0
    text = result.format()
    assert "E13" in text and "Speedup" in text


def test_strategies_see_same_stream():
    """Both strategies replay the identical seeded stream, so their hit
    counts match whenever both can compute the same chunks (ESM and VCMC
    have identical computability)."""
    config = quick_config()
    result = run_locality_sweep(config)
    for point in result.points:
        assert point.hit_ratio["esm"] == pytest.approx(
            point.hit_ratio["vcmc"], abs=0.25
        )
