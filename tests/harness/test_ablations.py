"""Ablation harness tests (quick config)."""

from __future__ import annotations

import pytest

from repro.harness.ablations import (
    run_preload_ablation,
    run_reinforcement_ablation,
)
from repro.harness.config import quick_config


@pytest.fixture(scope="module")
def config():
    return quick_config()


def test_reinforcement_ablation_structure(config):
    result = run_reinforcement_ablation(config)
    assert len(result.results) == 2 * len(config.cache_fractions)
    for (reinforce, fraction), stream in result.results.items():
        assert stream.queries == config.num_queries
    text = result.format()
    assert "Ablation A1" in text and "reinforced" in text


def test_preload_ablation_structure(config):
    result = run_preload_ablation(config)
    assert len(result.results) == 4 * len(config.cache_fractions)
    text = result.format()
    assert "Ablation A2" in text and "max_descendants" in text
    assert "hru" in text
    # The 'none' rule never preloads; the paper's rule does when it can.
    for fraction in config.cache_fractions:
        assert result.chosen[("none", fraction)] is None
    big = max(config.cache_fractions)
    assert result.chosen[("max_descendants", big)] is not None


def test_preload_rules_pick_different_levels(config):
    result = run_preload_ablation(config)
    big = max(config.cache_fractions)
    # Both rules pick something; 'largest' maximises bytes so it picks a
    # level at least as large as the paper's rule.
    schema = config.make_schema()
    paper_level = result.chosen[("max_descendants", big)]
    largest_level = result.chosen[("largest", big)]
    assert paper_level is not None and largest_level is not None


def test_preloading_beats_none_at_large_cache(config):
    result = run_preload_ablation(config)
    big = max(config.cache_fractions)
    with_preload = result.results[("max_descendants", big)]
    without = result.results[("none", big)]
    assert with_preload.hit_ratio >= without.hit_ratio
