"""A4 harness test (quick config)."""

from __future__ import annotations

from repro.harness.ablations import run_admission_ablation
from repro.harness.config import quick_config


def test_structure():
    config = quick_config()
    result = run_admission_ablation(config)
    assert len(result.results) == 2 * len(config.cache_fractions)
    text = result.format()
    assert "Ablation A4" in text and "profit" in text
    for stream in result.results.values():
        assert stream.queries == config.num_queries
