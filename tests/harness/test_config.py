"""Experiment configuration tests."""

from __future__ import annotations

import pytest

from repro.harness.config import (
    PAPER_CACHE_FRACTIONS,
    ExperimentConfig,
    default_config,
    quick_config,
)
from repro.util.errors import ReproError


def test_default_config_uses_paper_fractions():
    config = default_config()
    assert config.cache_fractions == PAPER_CACHE_FRACTIONS
    assert config.make_schema().heights == (6, 2, 3, 1, 1)


def test_quick_config_is_small():
    config = quick_config()
    assert config.num_tuples <= 1000
    assert config.make_schema().num_levels <= 20


def test_unknown_schema_rejected():
    config = ExperimentConfig(schema_name="nope")
    with pytest.raises(ReproError, match="unknown schema"):
        config.make_schema()


def test_cache_labels_follow_paper():
    config = default_config()
    assert config.cache_label(0.45).startswith("10 MB")
    assert config.cache_label(1.15).startswith("25 MB")
    assert "33%" in config.cache_label(0.33)


def test_config_hashable_for_memoisation():
    assert hash(default_config()) == hash(default_config())
    assert default_config() == default_config()
