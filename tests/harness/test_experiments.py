"""Harness smoke tests: every experiment runs on the quick config and its
report carries the structure the paper's artifact has."""

from __future__ import annotations

import pytest

from repro.harness import (
    build_components,
    quick_config,
    run_aggregation_benefit,
    run_cost_variation,
    run_policy_comparison,
    run_scheme_comparison,
    run_stream,
    run_table1,
    run_table2,
    run_table3,
)
from repro.harness.config import ExperimentConfig
from repro.harness.streams import SchemeSpec
from repro.harness.table2 import table2_levels


@pytest.fixture(scope="module")
def config():
    return quick_config()


def test_build_components_memoised(config):
    assert build_components(config) is build_components(config)


def test_table1_structure(config):
    result = run_table1(
        config,
        esmc_preloaded_config=ExperimentConfig(
            schema_name="apb_tiny", num_tuples=100
        ),
    )
    for algo in ("esm", "esmc", "vcm", "vcmc"):
        assert result.empty[algo].count == 12
        assert result.preloaded[algo].count == 12
    text = result.format()
    assert "Table 1" in text and "ESMC" in text


def test_table1_vcm_beats_esmc_on_average(config):
    result = run_table1(config)
    assert result.empty["vcm"].average <= result.empty["esmc"].average + 0.5


def test_table2_levels_generalisation():
    assert table2_levels((6, 2, 3, 1, 1)) == ((6, 2, 3, 1, 0), (6, 2, 3, 0, 0))
    assert table2_levels((2, 1, 1)) == ((2, 1, 0), (2, 0, 0))


def test_table2_vcm_second_load_propagates_nothing(config):
    result = run_table2(config)
    # Once the first (finer) level is loaded, every chunk is computable:
    # VCM's inserts on the second level touch only the chunk's own count.
    _, second_updates = result.updates["vcm"]
    second_level = result.levels[1]
    schema = quick_config().make_schema()
    assert second_updates == schema.num_chunks(second_level)
    # VCMC still pays: the new level changes descendants' least costs.
    assert result.updates["vcmc"][1] > result.updates["vcm"][1]
    assert "Table 2" in result.format()


def test_table3_matches_paper_ratios(config):
    result = run_table3(config)
    assert result.state_bytes["esm"] == 0
    assert result.state_bytes["esmc"] == 0
    assert result.state_bytes["vcmc"] == 6 * result.state_bytes["vcm"]
    assert result.state_bytes["vcm"] == result.total_chunks
    assert "% of base" in result.format()


def test_aggregation_benefit_cache_wins(config):
    result = run_aggregation_benefit(config)
    assert result.speedup.count > 0
    assert result.speedup.average > 1.0
    assert result.cache_ms.average < result.backend_ms.average
    assert "benefit of aggregation" in result.format()


def test_cost_variation_ratios_at_least_one(config):
    result = run_cost_variation(config)
    assert result.ratio.count > 0
    assert result.ratio.min_value >= 1.0 - 1e-9
    assert "fastest" in result.format()


def test_run_stream_accounting(config):
    result = run_stream(
        config, SchemeSpec(strategy="vcmc", policy="two_level"), 1.2
    )
    assert result.queries == config.num_queries
    assert 0 <= result.complete_hits <= result.queries
    assert result.total.total_ms > 0
    assert result.hit_ratio == result.complete_hits / result.queries


def test_run_stream_memoised(config):
    spec = SchemeSpec(strategy="vcmc", policy="two_level")
    assert run_stream(config, spec, 1.2) is run_stream(config, spec, 1.2)


def test_policy_comparison_structure(config):
    result = run_policy_comparison(config)
    assert set(result.policies()) == {"benefit", "two_level"}
    assert len(result.results) == 2 * len(config.cache_fractions)
    assert "Figure 7" in result.format_fig7()
    assert "Figure 8" in result.format_fig8()


def test_scheme_comparison_structure(config):
    result = run_scheme_comparison(config)
    assert len(result.results) == 3 * len(config.cache_fractions)
    assert "Figure 9" in result.format_fig9()
    assert "Figure 10" in result.format_fig10()
    assert "Table 4" in result.format_table4()


def test_active_cache_beats_noagg_on_hits(config):
    """Figure 9's headline: aggregation-capable schemes get far more
    complete hits than the conventional cache at a big cache size."""
    result = run_scheme_comparison(config)
    big = max(config.cache_fractions)
    assert result.get("vcmc", big).complete_hits > result.get(
        "noagg", big
    ).complete_hits


def test_cli_quick_run(capsys):
    from repro.harness.__main__ import main

    assert main(["--quick", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_cli_store_switch_is_cell_identical(capsys):
    """--store mmap routes every experiment through the columnar store
    and produces exactly the tables --store dict does."""
    from repro.harness.__main__ import main

    outputs = {}
    for store in ("dict", "mmap"):
        assert main(["--quick", "--store", store, "fig7", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Table 3" in out
        # Strip the configuration echo (it names the store) and the
        # timing lines (wall-clock noise); the hit-ratio and state-byte
        # cells must match exactly.  BENCH_storage.json separately holds
        # every experiment to cell-identical *answers* — this checks the
        # CLI plumbing end to end.
        outputs[store] = [
            line
            for line in out.splitlines()
            if not line.startswith("# Configuration")
            and not line.startswith("[")
        ]
    assert outputs["dict"] == outputs["mmap"]
