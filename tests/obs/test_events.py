"""Event tracer and sinks: ring buffer, JSONL, CSV summary, field binding."""

from __future__ import annotations

import csv
import json

import numpy as np

from repro.obs import (
    NULL_TRACER,
    CsvSummarySink,
    EventTracer,
    JsonlSink,
    RingBufferSink,
)


def test_tracer_without_sinks_is_disabled():
    tracer = EventTracer()
    assert not tracer.enabled
    tracer.emit("anything", x=1)  # harmless no-op
    assert not NULL_TRACER.enabled


def test_ring_buffer_keeps_last_n_and_filters_by_kind():
    sink = RingBufferSink(capacity=3)
    tracer = EventTracer((sink,))
    for i in range(5):
        tracer.emit("tick", i=i)
    tracer.emit("tock")
    assert len(sink) == 3
    ticks = sink.events("tick")
    assert [e["i"] for e in ticks] == [3, 4]
    assert sink.events("tock")[0]["kind"] == "tock"
    sink.clear()
    assert len(sink) == 0


def test_events_carry_kind_seq_and_fields():
    sink = RingBufferSink()
    tracer = EventTracer((sink,))
    tracer.emit("cache.hit", level=[0, 1], number=3)
    tracer.emit("cache.evict", number=4)
    first, second = sink.events()
    assert first["kind"] == "cache.hit"
    assert first["level"] == [0, 1]
    assert second["seq"] == first["seq"] + 1


def test_with_fields_stamps_constants_and_shares_sequence():
    sink = RingBufferSink()
    tracer = EventTracer((sink,))
    child = tracer.with_fields(scheme="vcmc", fraction=0.5)
    tracer.emit("a")
    child.emit("b")
    grandchild = child.with_fields(run=2)
    grandchild.emit("c", fraction=0.9)  # per-event fields win
    a, b, c = sink.events()
    assert "scheme" not in a
    assert b["scheme"] == "vcmc" and b["fraction"] == 0.5
    assert c["scheme"] == "vcmc" and c["run"] == 2 and c["fraction"] == 0.9
    assert [e["seq"] for e in (a, b, c)] == [0, 1, 2]


def test_jsonl_sink_writes_parseable_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = EventTracer((JsonlSink(path),))
    tracer.emit("query", ms=1.25, level=[1, 0])
    tracer.emit("phase", phase="lookup", ms=np.float64(0.5), n=np.int64(7))
    tracer.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first == {"kind": "query", "seq": 0, "ms": 1.25, "level": [1, 0]}
    # numpy scalars serialise as plain numbers
    assert second["ms"] == 0.5
    assert second["n"] == 7


def test_csv_summary_sink_rolls_up_per_kind(tmp_path):
    path = tmp_path / "summary.csv"
    sink = CsvSummarySink(path)
    tracer = EventTracer((sink,))
    tracer.emit("phase", phase="lookup", ms=1.0)
    tracer.emit("phase", phase="update", ms=2.5)
    tracer.emit("cache.hit", number=1)
    tracer.close()
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    by_kind = {row["kind"]: row for row in rows}
    assert by_kind["phase"]["count"] == "2"
    assert float(by_kind["phase"]["total_ms"]) == 3.5
    assert by_kind["cache.hit"]["count"] == "1"
    assert by_kind["cache.hit"]["total_ms"] == ""


def test_tracer_fans_out_to_multiple_sinks(tmp_path):
    ring = RingBufferSink()
    summary = CsvSummarySink(tmp_path / "s.csv")
    tracer = EventTracer((ring, summary))
    tracer.emit("x", ms=1.0)
    assert len(ring) == 1
    assert summary.rows() == [("x", 1, 1.0)]
