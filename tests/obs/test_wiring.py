"""End-to-end wiring: manager/store/strategy/backend report into one
Observability handle, and the JSONL export reconstructs Figure 10."""

from __future__ import annotations

import json

import pytest

from repro import AggregateCache, BackendDatabase, CostModel, Observability, Query
from repro.harness.config import quick_config
from repro.harness.obs_run import run_instrumented_streams


@pytest.fixture
def obs():
    return Observability.in_memory()


@pytest.fixture
def manager(tiny_schema, tiny_facts, obs):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel(), obs=obs)
    return AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        policy="two_level",
        preload=False,
        obs=obs,
    )


def test_query_emits_full_accounting_event(manager, obs, tiny_schema):
    result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    (event,) = obs.ring_events("query")
    b = result.breakdown
    assert event["complete_hit"] == result.complete_hit
    assert event["lookup_ms"] == b.lookup_ms
    assert event["aggregate_ms"] == b.aggregate_ms
    assert event["update_ms"] == b.update_ms
    assert event["backend_ms"] == b.backend_ms
    assert event["from_backend"] == result.from_backend
    assert event["state_updates"] == result.state_updates
    assert obs.metrics.counter("query.count").value == 1


def test_phase_spans_cover_every_query(manager, obs, tiny_schema):
    manager.query(Query.full_level(tiny_schema, tiny_schema.base_level))
    manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    phases = {e["phase"] for e in obs.ring_events("phase")}
    assert {"lookup", "aggregate", "update"} <= phases
    assert "backend" in phases  # the first query missed
    lookups = [e for e in obs.ring_events("phase") if e["phase"] == "lookup"]
    assert len(lookups) == 2
    assert obs.metrics.histogram("phase.lookup.ms").count == 2


def test_cache_and_backend_events_flow(manager, obs, tiny_schema):
    manager.query(Query.full_level(tiny_schema, tiny_schema.base_level))
    inserts = obs.ring_events("cache.insert")
    assert inserts and all(e["bytes"] >= 0 for e in inserts)
    fetches = obs.ring_events("backend.fetch")
    assert fetches and fetches[0]["tuples_scanned"] > 0
    # the aggregated level is now computable: second query aggregates
    result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    assert result.complete_hit
    assert obs.metrics.counter("lookup.finds").value > 0
    assert obs.metrics.histogram("lookup.visits").count > 0


def test_eviction_and_rejection_events(tiny_schema, tiny_facts, obs):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    base = tiny_schema.base_level
    chunks = backend.compute_level(base)
    sizes = [c.size_bytes(tiny_schema.bytes_per_tuple) for c in chunks]
    capacity = max(s for s in sizes if s > 0)  # room for roughly one chunk
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=capacity,
        strategy="vcmc",
        policy="benefit",
        preload=False,
        obs=obs,
    )
    manager.query(Query.full_level(tiny_schema, base))
    snapshot = obs.snapshot()
    assert obs.ring_events("cache.evict")
    assert snapshot["counters"]["cache.evictions"] > 0
    assert snapshot["gauges"]["cache.used_bytes"] <= capacity


def test_reinforcement_events(manager, obs, tiny_schema):
    manager.query(Query.full_level(tiny_schema, tiny_schema.base_level))
    manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    reinforcements = obs.ring_events("policy.reinforce")
    assert reinforcements
    assert all(e["chunks"] > 0 for e in reinforcements)


def test_disabled_obs_records_nothing(tiny_schema, tiny_backend):
    manager = AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20, preload=False
    )
    result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    assert result.chunks
    assert not manager.obs.enabled
    assert manager.obs.snapshot()["counters"] == {}
    assert not manager.obs.ring_events()


def test_jsonl_export_reconstructs_figure10(tmp_path):
    """The acceptance path: --metrics-out events → Fig 10 breakdown."""
    config = quick_config()
    out = tmp_path / "metrics.jsonl"
    summary = run_instrumented_streams(config, out)
    assert "per-phase timing summary" in summary
    events = [json.loads(line) for line in out.read_text().splitlines()]
    queries = [e for e in events if e["kind"] == "query"]
    assert queries, "no query events exported"

    # Figure 10: average lookup/aggregate/update per complete-hit query,
    # grouped by scheme and cache fraction.
    groups: dict[tuple[str, float], list[dict]] = {}
    for event in queries:
        if event["complete_hit"]:
            groups.setdefault(
                (event["scheme"], event["fraction"]), []
            ).append(event)
    assert groups, "no complete hits to break down"
    for (scheme, fraction), rows in groups.items():
        assert scheme in ("esm", "vcmc")
        for phase in ("lookup_ms", "aggregate_ms", "update_ms"):
            avg = sum(r[phase] for r in rows) / len(rows)
            assert avg >= 0.0
        # complete hits never touch the backend
        assert all(r["backend_ms"] == 0.0 for r in rows)
        assert all(r["from_backend"] == 0 for r in rows)

    # Internal consistency: phase spans and query events report the same
    # totals (phase events are emitted from the very spans that fill the
    # per-query breakdown).
    for phase in ("lookup", "aggregate", "update", "backend"):
        span_total = sum(
            e["ms"] for e in events
            if e["kind"] == "phase" and e["phase"] == phase
        )
        query_total = sum(e[f"{phase}_ms"] for e in queries)
        assert span_total == pytest.approx(query_total, rel=1e-9)

    # Cache events are present alongside the timings.
    kinds = {e["kind"] for e in events}
    assert {"cache.insert", "backend.fetch", "phase", "query"} <= kinds
