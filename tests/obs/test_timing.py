"""The span() phase timer and @timed decorator."""

from __future__ import annotations

import pytest

from repro.obs import NULL_OBS, Observability, span, timed


def test_span_measures_and_records_when_enabled():
    obs = Observability.in_memory()
    with span(obs, "lookup", query=7) as s:
        pass
    assert s.elapsed_ms >= 0.0
    hist = obs.metrics.histogram("phase.lookup.ms")
    assert hist.count == 1
    (event,) = obs.ring_events("phase")
    assert event["phase"] == "lookup"
    assert event["query"] == 7
    assert event["ms"] == s.elapsed_ms


def test_span_with_disabled_obs_still_times():
    with span(NULL_OBS, "lookup") as s:
        x = sum(range(100))
    assert x == 4950
    assert s.elapsed_ms > 0.0
    assert not NULL_OBS.ring_events()


def test_span_accepts_none_obs():
    with span(None, "anything") as s:
        pass
    assert s.elapsed_ms >= 0.0


def test_span_record_overrides_wall_clock():
    obs = Observability.in_memory()
    with span(obs, "backend") as s:
        s.record(42.5)
    assert s.elapsed_ms == 42.5
    (event,) = obs.ring_events("phase")
    assert event["ms"] == 42.5


def test_span_does_not_record_on_exception():
    obs = Observability.in_memory()
    with pytest.raises(ValueError):
        with span(obs, "lookup"):
            raise ValueError("boom")
    assert obs.metrics.histogram("phase.lookup.ms").count == 0
    assert not obs.ring_events("phase")


class _Instrumented:
    def __init__(self, obs):
        self.obs = obs
        self.calls = 0

    @timed("work")
    def work(self, value):
        self.calls += 1
        return value * 2


def test_timed_decorator_records_histogram():
    obs = Observability.in_memory()
    target = _Instrumented(obs)
    assert target.work(21) == 42
    assert target.calls == 1
    assert obs.metrics.histogram("timed.work.ms").count == 1


def test_timed_decorator_is_transparent_when_disabled():
    target = _Instrumented(NULL_OBS)
    assert target.work(5) == 10
    no_obs = _Instrumented(None)
    assert no_obs.work(5) == 10


def test_observability_bind_shares_registry():
    obs = Observability.in_memory()
    bound = obs.bind(scheme="vcmc")
    bound.metrics.counter("n").inc()
    assert obs.metrics.counter("n").value == 1
    bound.tracer.emit("x")
    (event,) = obs.ring_events("x")
    assert event["scheme"] == "vcmc"
    # binding a disabled instance stays the shared no-op
    assert NULL_OBS.bind(scheme="esm") is NULL_OBS
