"""Metric instruments: counters, gauges, streaming histograms, registry."""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.obs.metrics import Histogram


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("queries").inc()
    registry.counter("queries").inc(4)
    registry.gauge("bytes").set(123.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["queries"] == 5
    assert snapshot["gauges"]["bytes"] == 123.0


def test_instruments_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.counter("a") is not registry.counter("b")


def test_histogram_tracks_exact_count_total_min_max():
    h = Histogram("t")
    for value in (3.0, 1.0, 4.0, 1.5, 9.0):
        h.observe(value)
    assert h.count == 5
    assert h.total == 18.5
    assert h.min == 1.0
    assert h.max == 9.0
    assert abs(h.mean - 3.7) < 1e-12


def test_empty_histogram_is_harmless():
    h = Histogram("t")
    assert h.quantile(0.5) == 0.0
    assert h.summary() == {"count": 0}
    assert h.mean == 0.0


def test_histogram_quantiles_track_numpy_percentiles():
    rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=1.0, sigma=1.2, size=20_000)
    h = Histogram("t")
    for value in samples:
        h.observe(float(value))
    for q in (0.50, 0.95, 0.99):
        exact = float(np.percentile(samples, 100 * q))
        estimate = h.quantile(q)
        # Bucket growth is 2**0.25 — one bucket is ~19% wide, so the
        # interpolated estimate must land within that.
        assert abs(estimate - exact) / exact < 0.2, (q, estimate, exact)
    assert h.p50 == h.quantile(0.50)
    assert h.quantile(0.0) == h.min
    assert h.quantile(1.0) == h.max


def test_histogram_quantiles_clamped_to_observed_range():
    h = Histogram("t")
    h.observe(5.0)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 5.0


def test_histogram_handles_out_of_range_values():
    h = Histogram("t")
    h.observe(0.0)       # below the lowest bucket edge
    h.observe(-2.0)      # negative
    h.observe(1e12)      # beyond the highest edge
    assert h.count == 3
    assert h.min == -2.0
    assert h.max == 1e12
    assert h.quantile(0.5) >= h.min
    assert h.quantile(0.5) <= h.max


def test_null_registry_swallows_everything():
    assert not NULL_REGISTRY.enabled
    counter = NULL_REGISTRY.counter("x")
    counter.inc(100)
    assert counter.value == 0
    NULL_REGISTRY.gauge("g").set(9.0)
    assert NULL_REGISTRY.gauge("g").value == 0.0
    NULL_REGISTRY.histogram("h").observe(1.0)
    assert NULL_REGISTRY.histogram("h").count == 0
    # Shared instruments: no per-name allocation on the disabled path.
    assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")


def test_snapshot_is_sorted_and_json_round_trippable():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc()
    registry.histogram("h").observe(2.5)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]
    assert json.loads(json.dumps(snapshot)) == snapshot
