"""Query shape tests."""

from __future__ import annotations

import pytest

from repro.schema import apb_tiny_schema
from repro.util.errors import SchemaError
from repro.workload import Query


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def test_full_level_covers_all_chunks(schema):
    for level in schema.all_levels():
        query = Query.full_level(schema, level)
        assert query.num_chunks == schema.num_chunks(level)
        assert query.chunk_numbers(schema) == list(
            range(schema.num_chunks(level))
        )


def test_single_chunk(schema):
    level = schema.base_level
    for number in range(schema.num_chunks(level)):
        query = Query.single_chunk(schema, level, number)
        assert query.chunk_numbers(schema) == [number]
        assert query.num_chunks == 1


def test_rectangular_region(schema):
    level = schema.base_level  # chunk shape (4, 2, 1)
    query = Query(level, ((1, 3), (0, 2), (0, 1)))
    numbers = query.chunk_numbers(schema)
    assert len(numbers) == 4
    coords = [schema.chunks.chunk_coords(level, n) for n in numbers]
    assert all(1 <= a < 3 and 0 <= b < 2 and c == 0 for a, b, c in coords)


def test_row_major_enumeration(schema):
    level = schema.base_level
    query = Query(level, ((0, 2), (0, 2), (0, 1)))
    assert query.chunk_numbers(schema) == [0, 1, 2, 3]


def test_shape_validation(schema):
    with pytest.raises(SchemaError, match="chunk ranges"):
        Query((2, 1, 1), ((0, 1),))
    with pytest.raises(SchemaError, match="invalid chunk range"):
        Query((2, 1, 1), ((0, 0), (0, 1), (0, 1)))
    with pytest.raises(SchemaError, match="invalid chunk range"):
        Query((2, 1, 1), ((-1, 1), (0, 1), (0, 1)))


def test_out_of_range_region_rejected_at_expansion(schema):
    query = Query(schema.base_level, ((0, 99), (0, 1), (0, 1)))
    with pytest.raises(SchemaError, match="exceeds"):
        query.chunk_numbers(schema)


def test_describe(schema):
    query = Query.full_level(schema, (0, 0, 0))
    assert "[0,1)" in query.describe(schema)
