"""Query-stream generator tests."""

from __future__ import annotations

import pytest

from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from repro.workload import Query, QueryKind, QueryStreamGenerator, StreamMix


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def test_mix_must_sum_to_one():
    with pytest.raises(ReproError):
        StreamMix(drill_down=0.5, roll_up=0.5, proximity=0.5, random=0.5)
    StreamMix()  # paper default is valid


def test_deterministic_given_seed(schema):
    a = QueryStreamGenerator(schema, seed=3).generate(30)
    b = QueryStreamGenerator(schema, seed=3).generate(30)
    assert a == b
    c = QueryStreamGenerator(schema, seed=4).generate(30)
    assert a != c


def test_all_queries_valid(schema):
    gen = QueryStreamGenerator(schema, seed=1)
    for query in gen.generate(200):
        numbers = query.chunk_numbers(schema)  # raises if out of range
        assert numbers
        assert all(
            0 <= lo < hi <= extent
            for (lo, hi), extent in zip(
                query.chunk_ranges, schema.chunk_shape(query.level)
            )
        )


def test_first_query_is_random(schema):
    gen = QueryStreamGenerator(schema, seed=1)
    gen.next_query()
    assert gen.kind_counts[QueryKind.RANDOM] == 1


def test_mix_roughly_respected(schema):
    gen = QueryStreamGenerator(schema, seed=7)
    gen.generate(600)
    counts = gen.kind_counts
    total = sum(counts.values())
    assert total == 600
    # The paper's 30/30/30/10 mix; random absorbs impossible moves, so
    # allow generous tolerances.
    assert counts[QueryKind.DRILL_DOWN] / total == pytest.approx(0.3, abs=0.1)
    assert counts[QueryKind.ROLL_UP] / total == pytest.approx(0.3, abs=0.1)
    assert counts[QueryKind.PROXIMITY] / total == pytest.approx(0.3, abs=0.1)


def test_drill_down_moves_one_level_finer(schema):
    gen = QueryStreamGenerator(schema, seed=5)
    last = gen.next_query()
    query = gen._make_drill_down(last)
    if query is not None:
        diff = [n - o for o, n in zip(last.level, query.level)]
        assert sorted(diff) == [0] * (len(diff) - 1) + [1]


def test_roll_up_moves_one_level_coarser(schema):
    gen = QueryStreamGenerator(schema, seed=5)
    gen._last = Query.full_level(schema, schema.base_level)
    query = gen._make_roll_up(gen._last)
    diff = [o - n for o, n in zip(schema.base_level, query.level)]
    assert sorted(diff) == [0] * (len(diff) - 1) + [1]


def test_roll_up_region_covers_same_data(schema):
    gen = QueryStreamGenerator(schema, seed=5)
    last = Query(schema.base_level, ((1, 3), (0, 1), (0, 1)))
    query = gen._make_roll_up(last)
    assert query is not None
    # The rolled-up region, pushed back down, must contain the original.
    for dim, old_l, new_l, (olo, ohi), (nlo, nhi) in zip(
        schema.dimensions,
        last.level,
        query.level,
        last.chunk_ranges,
        query.chunk_ranges,
    ):
        if new_l == old_l:
            assert (nlo, nhi) == (olo, ohi)
        else:
            first, last_exclusive = dim.child_chunk_span(new_l, nlo, old_l)
            _, last_hi = dim.child_chunk_span(new_l, nhi - 1, old_l)
            assert first <= olo and last_hi >= ohi


def test_proximity_shifts_one_dimension(schema):
    gen = QueryStreamGenerator(schema, seed=5)
    last = Query(schema.base_level, ((1, 2), (0, 1), (0, 1)))
    query = gen._make_proximity(last)
    assert query is not None
    assert query.level == last.level
    moved = [
        (old, new)
        for old, new in zip(last.chunk_ranges, query.chunk_ranges)
        if old != new
    ]
    assert len(moved) == 1
    (olo, ohi), (nlo, nhi) = moved[0]
    assert abs(nlo - olo) == 1 and (ohi - olo) == (nhi - nlo)


def test_apex_roll_up_falls_back_to_random(schema):
    gen = QueryStreamGenerator(
        schema,
        mix=StreamMix(drill_down=0.0, roll_up=1.0, proximity=0.0, random=0.0),
        seed=5,
    )
    gen._last = Query.full_level(schema, schema.apex_level)
    query = gen.next_query()  # must not crash
    assert query is not None


def test_max_extent_bounds_random_queries(schema):
    # max_extent applies to freshly generated (random) regions; follow-up
    # drill-downs may legitimately widen when remapping to a finer level.
    gen = QueryStreamGenerator(
        schema,
        mix=StreamMix(drill_down=0.0, roll_up=0.0, proximity=0.0, random=1.0),
        max_extent=1,
        seed=9,
    )
    for query in gen.generate(100):
        assert all(hi - lo <= 1 for lo, hi in query.chunk_ranges)


def test_stream_iterator(schema):
    gen = QueryStreamGenerator(schema, seed=2)
    stream = gen.stream()
    queries = [next(stream) for _ in range(5)]
    assert len(queries) == 5


def test_hotspot_biases_random_regions(schema):
    uniform = QueryStreamGenerator(
        schema,
        mix=StreamMix(drill_down=0.0, roll_up=0.0, proximity=0.0, random=1.0),
        seed=2,
    )
    hot = QueryStreamGenerator(
        schema,
        mix=StreamMix(drill_down=0.0, roll_up=0.0, proximity=0.0, random=1.0),
        hotspot=0.8,
        seed=2,
    )

    def mean_start(gen):
        starts = []
        for query in gen.generate(300):
            starts.extend(lo for lo, _ in query.chunk_ranges)
        return sum(starts) / len(starts)

    assert mean_start(hot) < mean_start(uniform)


def test_hotspot_validation(schema):
    import pytest as _pytest

    with _pytest.raises(ReproError, match="hotspot"):
        QueryStreamGenerator(schema, hotspot=1.0)
