"""Trace record/replay tests."""

from __future__ import annotations

import pytest

from repro import AggregateCache, QueryStreamGenerator
from repro.util.errors import ReproError
from repro.workload.trace import load_trace, replay_trace, save_trace


def test_roundtrip(tiny_schema, tmp_path):
    generator = QueryStreamGenerator(tiny_schema, seed=3)
    queries = generator.generate(25)
    path = tmp_path / "trace.jsonl"
    assert save_trace(queries, path) == 25
    loaded = load_trace(tiny_schema, path)
    assert loaded == queries


def test_replay_reproduces_results(tiny_schema, tiny_backend, tmp_path):
    generator = QueryStreamGenerator(tiny_schema, seed=9)
    queries = generator.generate(10)
    path = tmp_path / "trace.jsonl"
    save_trace(queries, path)
    loaded = load_trace(tiny_schema, path)

    def run(qs):
        manager = AggregateCache(
            tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy="vcm"
        )
        return [r.total_value() for r in replay_trace(manager, qs)]

    assert run(loaded) == pytest.approx(run(queries))


def test_replay_enables_fair_comparison(tiny_schema, tiny_backend, tmp_path):
    """Two managers replaying one trace see identical queries."""
    generator = QueryStreamGenerator(tiny_schema, seed=4)
    path = tmp_path / "trace.jsonl"
    save_trace(generator.generate(12), path)
    queries = load_trace(tiny_schema, path)
    totals = {}
    for strategy in ("noagg", "vcmc"):
        manager = AggregateCache(
            tiny_schema,
            tiny_backend,
            capacity_bytes=1 << 20,
            strategy=strategy,
        )
        results = list(replay_trace(manager, queries))
        totals[strategy] = [r.total_value() for r in results]
    assert totals["noagg"] == pytest.approx(totals["vcmc"])


def test_malformed_header(tiny_schema, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ReproError, match="malformed header"):
        load_trace(tiny_schema, path)


def test_wrong_version(tiny_schema, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"trace_version": 99}\n')
    with pytest.raises(ReproError, match="version 99"):
        load_trace(tiny_schema, path)


def test_malformed_record(tiny_schema, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"trace_version": 1}\n{"level": [0, 0]}\n')
    with pytest.raises(ReproError, match="malformed query record"):
        load_trace(tiny_schema, path)


def test_schema_mismatch_caught(tiny_schema, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"trace_version": 1}\n'
        '{"level": [9, 9, 9], "chunk_ranges": [[0, 1], [0, 1], [0, 1]]}\n'
    )
    with pytest.raises(Exception):
        load_trace(tiny_schema, path)
