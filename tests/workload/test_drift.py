"""DriftingZipfStream: determinism, skew, drift and query validity."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from repro.workload.drift import DriftingZipfStream

SCHEMA = apb_tiny_schema()


def test_same_seed_same_stream():
    a = DriftingZipfStream(SCHEMA, seed=11).generate(200)
    b = DriftingZipfStream(SCHEMA, seed=11).generate(200)
    assert a == b


def test_different_seeds_diverge():
    a = DriftingZipfStream(SCHEMA, seed=1).generate(100)
    b = DriftingZipfStream(SCHEMA, seed=2).generate(100)
    assert a != b


def test_queries_are_schema_valid():
    stream = DriftingZipfStream(SCHEMA, seed=3, max_extent=4)
    for query in stream.generate(300):
        shape = SCHEMA.chunk_shape(query.level)
        for (lo, hi), extent in zip(query.chunk_ranges, shape):
            assert 0 <= lo < hi <= extent
            assert hi - lo <= stream.max_extent


def test_zipf_skews_towards_the_hot_level():
    stream = DriftingZipfStream(
        SCHEMA, s=1.5, drift_every=10_000, seed=5
    )
    hot = stream.current_hot_level
    counts = Counter(q.level for q in stream.generate(500))
    assert counts[hot] == max(counts.values())
    # Clearly skewed: the hot level beats a uniform share by a margin.
    assert counts[hot] > 2 * 500 / len(list(SCHEMA.all_levels()))


def test_drift_rotates_the_ranking_on_schedule():
    stream = DriftingZipfStream(SCHEMA, drift_every=25, seed=7)
    before = stream.current_hot_level
    stream.generate(25)
    assert stream.drifts == 0  # rotation happens ON the next emission
    stream.generate(1)
    assert stream.drifts == 1
    assert stream.current_hot_level != before
    stream.generate(3 * 25)
    assert stream.drifts == 4


def test_hot_set_slides_rather_than_teleports():
    """Consecutive rankings share their untouched middle — hysteresis
    has something to hold on to."""
    stream = DriftingZipfStream(SCHEMA, drift_every=1, seed=13)
    ranking_before = list(stream._ranking)
    stream.generate(2)  # second emission triggers the first drift
    assert stream.drifts == 1
    shift = max(1, len(ranking_before) // 3)
    assert stream._ranking == (
        ranking_before[shift:] + ranking_before[:shift]
    )


@pytest.mark.parametrize(
    "kwargs",
    [{"s": 0.0}, {"drift_every": 0}, {"hotspot": 1.0}, {"hotspot": -0.1}],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ReproError):
        DriftingZipfStream(SCHEMA, **kwargs)
