"""Shared fixtures: tiny schemas, deterministic facts, backends."""

from __future__ import annotations

import pytest

from repro import (
    BackendDatabase,
    CostModel,
    SizeEstimator,
    apb_tiny_schema,
    generate_fact_table,
)
from repro.aggregation import set_default_validation
from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache


@pytest.fixture(scope="session", autouse=True)
def _tests_validate_aggregation():
    """The full aggregation output sweep is on for every test (the
    benchmark harness turns it off; see docs/perf.md)."""
    previous = set_default_validation(True)
    yield
    set_default_validation(previous)


@pytest.fixture(scope="session")
def tiny_schema():
    return apb_tiny_schema()


@pytest.fixture(scope="session")
def tiny_facts(tiny_schema):
    return generate_fact_table(tiny_schema, num_tuples=300, seed=42)


@pytest.fixture(scope="session")
def tiny_backend(tiny_schema, tiny_facts):
    return BackendDatabase(tiny_schema, tiny_facts, CostModel())


@pytest.fixture(scope="session")
def tiny_sizes(tiny_schema, tiny_facts):
    return SizeEstimator(tiny_schema, tiny_facts.num_tuples)


@pytest.fixture
def big_cache(tiny_schema):
    """A cache large enough that nothing is ever evicted."""
    return ChunkCache(1 << 30, make_policy("benefit"), tiny_schema.bytes_per_tuple)
