"""ResilientBackend: retry, timeout and circuit-breaker behaviour."""

from __future__ import annotations

import pytest

from repro import ResilientBackend
from repro.backend.resilient import BreakerState
from repro.faults import (
    BackendTimeout,
    CircuitOpenError,
    FailpointRegistry,
    TransientBackendError,
)
from repro.obs import Observability


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def no_sleep(_seconds: float) -> None:
    pass


def make_resilient(tiny_backend, **kwargs):
    kwargs.setdefault("sleep", no_sleep)
    kwargs.setdefault("seed", 11)
    return ResilientBackend(tiny_backend, **kwargs)


@pytest.fixture
def requests(tiny_schema):
    level = tiny_schema.base_level
    return [(level, n) for n in range(tiny_schema.num_chunks(level))]


def test_fault_free_fetch_is_identical_to_inner(tiny_backend, requests):
    resilient = make_resilient(tiny_backend)
    chunks, stats = resilient.fetch(requests)
    bare_chunks, bare_stats = tiny_backend.fetch(requests)
    assert [c.cell_dict() for c in chunks] == [c.cell_dict() for c in bare_chunks]
    assert stats.chunks_requested == bare_stats.chunks_requested
    assert resilient.retries == 0
    assert resilient.breaker_state is BreakerState.CLOSED
    assert resilient.breaker_transitions == []


def test_delegates_everything_but_fetch(tiny_backend):
    resilient = make_resilient(tiny_backend)
    assert resilient.num_tuples == tiny_backend.num_tuples
    assert resilient.cost_model is tiny_backend.cost_model
    assert resilient.base_chunk_numbers() == tiny_backend.base_chunk_numbers()


def test_retries_through_a_transient_failure(tiny_backend, requests):
    resilient = make_resilient(
        tiny_backend, obs=Observability.in_memory(), max_retries=3
    )
    registry = FailpointRegistry()
    registry.fail("backend.fetch", TransientBackendError, calls={1, 2})
    with registry.armed():
        chunks, _ = resilient.fetch(requests)
    assert len(chunks) == len(requests)
    assert resilient.retries == 2
    assert resilient.breaker_state is BreakerState.CLOSED
    snapshot = resilient.obs.metrics.snapshot()
    assert snapshot["counters"]["backend.retries"] == 2


def test_exhausted_retries_raise_the_last_error(tiny_backend, requests):
    resilient = make_resilient(tiny_backend, max_retries=1, failure_threshold=99)
    registry = FailpointRegistry()
    registry.fail("backend.fetch", TransientBackendError)
    with registry.armed():
        with pytest.raises(TransientBackendError):
            resilient.fetch(requests)
        assert registry.calls("backend.fetch") == 2  # 1 try + 1 retry


def test_breaker_opens_and_fails_fast_without_touching_backend(
    tiny_backend, requests
):
    clock = FakeClock()
    resilient = make_resilient(
        tiny_backend,
        max_retries=10,
        failure_threshold=3,
        clock=clock,
        obs=Observability.in_memory(),
    )
    registry = FailpointRegistry()
    registry.fail("backend.fetch", TransientBackendError)
    with registry.armed():
        with pytest.raises(TransientBackendError):
            resilient.fetch(requests)
        # Opening the breaker stops the retry loop at the threshold.
        assert registry.calls("backend.fetch") == 3
        assert resilient.breaker_state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            resilient.fetch(requests)
        assert registry.calls("backend.fetch") == 3  # fast-fail: inner untouched
    assert resilient.fast_failures == 1
    snapshot = resilient.obs.metrics.snapshot()
    assert snapshot["counters"]["backend.fast_failures"] == 1
    assert snapshot["gauges"]["backend.breaker_state"] == BreakerState.OPEN.value


def test_half_open_probe_closes_breaker_on_recovery(tiny_backend, requests):
    clock = FakeClock()
    resilient = make_resilient(
        tiny_backend,
        max_retries=0,
        failure_threshold=1,
        reset_timeout_s=5.0,
        clock=clock,
    )
    registry = FailpointRegistry()
    registry.fail("backend.fetch", TransientBackendError, times=1)
    with registry.armed():
        with pytest.raises(TransientBackendError):
            resilient.fetch(requests)
        assert resilient.breaker_state is BreakerState.OPEN
        clock.advance(5.0)
        chunks, _ = resilient.fetch(requests)  # the half-open probe
    assert len(chunks) == len(requests)
    assert resilient.breaker_state is BreakerState.CLOSED
    assert resilient.breaker_transitions == [
        ("CLOSED", "OPEN"),
        ("OPEN", "HALF_OPEN"),
        ("HALF_OPEN", "CLOSED"),
    ]


def test_failed_probe_reopens_breaker(tiny_backend, requests):
    clock = FakeClock()
    resilient = make_resilient(
        tiny_backend,
        max_retries=0,
        failure_threshold=1,
        reset_timeout_s=5.0,
        clock=clock,
    )
    registry = FailpointRegistry()
    registry.fail("backend.fetch", TransientBackendError)
    with registry.armed():
        with pytest.raises(TransientBackendError):
            resilient.fetch(requests)
        clock.advance(5.0)
        with pytest.raises(TransientBackendError):
            resilient.fetch(requests)  # probe fails
        assert resilient.breaker_state is BreakerState.OPEN
        # Fast-fail resumes until the next reset window.
        with pytest.raises(CircuitOpenError):
            resilient.fetch(requests)
    assert resilient.breaker_transitions == [
        ("CLOSED", "OPEN"),
        ("OPEN", "HALF_OPEN"),
        ("HALF_OPEN", "OPEN"),
    ]


def test_slow_fetch_counts_as_timeout_and_is_retried(tiny_backend, requests):
    ticks = iter([0.0, 10.0, 10.0, 10.5])
    resilient = make_resilient(
        tiny_backend,
        timeout_s=1.0,
        max_retries=2,
        clock=lambda: next(ticks),
    )
    chunks, _ = resilient.fetch(requests)
    assert len(chunks) == len(requests)
    assert resilient.retries == 1


def test_timeout_exhaustion_raises_backend_timeout(tiny_backend, requests):
    clock = FakeClock()

    def slow_clock():
        clock.advance(10.0)  # every clock read jumps: each attempt "hangs"
        return clock.now

    resilient = make_resilient(
        tiny_backend,
        timeout_s=1.0,
        max_retries=1,
        failure_threshold=99,
        clock=slow_clock,
    )
    with pytest.raises(BackendTimeout):
        resilient.fetch(requests)


def test_backoff_grows_and_is_capped(tiny_backend):
    resilient = make_resilient(
        tiny_backend,
        base_backoff_s=0.01,
        max_backoff_s=0.04,
        jitter=0.0,
    )
    assert resilient._backoff_s(1) == pytest.approx(0.01)
    assert resilient._backoff_s(2) == pytest.approx(0.02)
    assert resilient._backoff_s(3) == pytest.approx(0.04)
    assert resilient._backoff_s(6) == pytest.approx(0.04)  # capped


def test_jittered_backoff_is_seed_deterministic(tiny_backend):
    first = make_resilient(tiny_backend, seed=3, jitter=0.5)
    second = make_resilient(tiny_backend, seed=3, jitter=0.5)
    assert [first._backoff_s(k) for k in (1, 2, 3)] == [
        second._backoff_s(k) for k in (1, 2, 3)
    ]
