"""Chaos testing: seeded fault schedules against 6-worker serving.

Each run derives a fault schedule from one seed — a backend outage
window, probabilistic scan corruption, and lock/admission latency — and
drives a seeded query stream through :class:`ConcurrentAggregateCache`
over a :class:`ResilientBackend` in degraded mode.  The properties:

* **no unhandled exceptions** — every query returns a
  :class:`QueryResult` even mid-outage;
* **no torn results** — each result's answered + unanswered chunks
  partition the query exactly, and every answered chunk is bit-exact
  against a direct aggregation of the fact table;
* **state integrity** — byte accounting and the Count/Cost stores equal
  a from-scratch rebuild off the final resident set;
* **recovery** — after the schedule ends the circuit breaker re-closes
  and queries stop degrading.

A failing seed is appended to ``$CHAOS_REPLAY_PATH`` (default
``artifacts/chaos_replay.txt``, git-ignored) before the assertion
propagates, so CI can attach it as an artifact and the run can be
replayed locally with
``CHAOS_SEEDS=<seed> pytest tests/faults/test_chaos_properties.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    CountStore,
    Query,
    QueryStreamGenerator,
    ResilientBackend,
)
from repro.backend.resilient import BreakerState
from repro.core.costs import CostStore
from repro.faults import (
    CorruptChunkError,
    FailpointRegistry,
    TransientBackendError,
)
from repro.util.rng import make_rng
from tests.helpers import direct_aggregate, expected_cells_in_chunk

WORKERS = 6
NUM_QUERIES = 48

#: The CI smoke matrix: fixed seeds, overridable for replay via
#: ``CHAOS_SEEDS=1,2,3``.
CHAOS_SEED_MATRIX = tuple(
    int(s)
    for s in os.environ.get("CHAOS_SEEDS", "101,202,303,404").split(",")
)


def record_failing_seed(seed: int) -> None:
    """Append ``seed`` to the replay file (default: the git-ignored
    ``artifacts/`` directory, so a local failure never lands in a
    commit; CI uploads the same path)."""
    path = os.environ.get(
        "CHAOS_REPLAY_PATH", os.path.join("artifacts", "chaos_replay.txt")
    )
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(f"{seed}\n")


def build_schedule(seed: int) -> FailpointRegistry:
    """Derive one deterministic fault schedule from ``seed``."""
    plan_rng = make_rng(seed)
    registry = FailpointRegistry(seed=seed)
    # A hard outage window over the backend's fetch entry point.  With
    # retries in front, a window of w calls kills roughly w/2 queries.
    start = int(plan_rng.integers(2, 20))
    width = int(plan_rng.integers(4, 16))
    registry.fail(
        "backend.fetch", TransientBackendError, calls=range(start, start + width)
    )
    # Sporadic scan corruption (retryable: fresh bytes cure it).
    registry.fail("backend.scan", CorruptChunkError, p=0.02)
    # Latency on the lock and admission paths to shake out interleavings.
    registry.delay("service.lock", latency_ms=0.2, p=0.05)
    registry.delay("cache.insert", latency_ms=0.2, p=0.10)
    return registry


def run_chaos(schema, facts, seed: int, store: str = "dict"):
    backend = BackendDatabase(schema, facts, CostModel(), store=store)
    resilient = ResilientBackend(
        backend,
        max_retries=1,
        base_backoff_s=0.0001,
        max_backoff_s=0.001,
        failure_threshold=3,
        reset_timeout_s=0.02,
        seed=seed,
    )
    manager = AggregateCache(
        schema,
        resilient,
        capacity_bytes=max(int(backend.base_size_bytes * 0.6), 1),
        strategy="vcmc",
        policy="two_level",
        cost_rel_tol=0.0,
        degraded_mode=True,
    )
    service = ConcurrentAggregateCache(manager, flight_timeout_s=15.0)
    stream = list(
        QueryStreamGenerator(schema, max_extent=3, seed=seed).generate(
            NUM_QUERIES
        )
    )
    registry = build_schedule(seed)
    with registry.armed():
        # serve() re-raises any worker exception: its clean return IS the
        # zero-unhandled-exceptions property.
        results = service.serve(stream, workers=WORKERS)
    return service, resilient, stream, results


def check_run(schema, facts, service, resilient, stream, results) -> int:
    """All chaos properties; returns the count of degraded-but-answered
    results so the caller can assert on schedule effectiveness."""
    manager = service.manager
    assert len(results) == len(stream)
    assert all(r is not None for r in results)

    truths: dict = {}
    degraded_with_answers = 0
    for query, result in zip(stream, results):
        numbers = query.chunk_numbers(schema)
        answered = [chunk.number for chunk in result.chunks]
        # Not torn: answered + unanswered partition the query, in order.
        assert sorted(answered + list(result.unanswered)) == sorted(numbers)
        assert answered == [
            n for n in numbers if n not in set(result.unanswered)
        ]
        assert result.coverage == pytest.approx(
            len(answered) / len(numbers)
        )
        if not result.degraded:
            assert result.unanswered == ()
            assert result.coverage == 1.0
        elif answered:
            degraded_with_answers += 1
        # Every answered chunk — degraded or not — is exact.
        level = query.level
        if level not in truths:
            truths[level] = direct_aggregate(facts, level)
        for chunk in result.chunks:
            expected = expected_cells_in_chunk(
                schema, truths[level], level, chunk.number
            )
            assert chunk.cell_dict() == pytest.approx(expected), (
                query,
                chunk.number,
            )

    assert service.flights.in_progress() == 0
    assert manager.degraded_queries == sum(
        1 for r in results if r.degraded
    )

    # Byte accounting and Count/Cost state equal a rebuild from the
    # final resident set.
    cache = manager.cache
    assert cache.used_bytes == sum(
        entry.size_bytes for entry in cache.entries()
    )
    resident = list(cache.resident_keys())
    rebuilt_counts = CountStore(schema)
    rebuilt_counts.on_insert_many(resident)
    for level in schema.all_levels():
        assert np.array_equal(
            manager.strategy.counts.counts_array(level),
            rebuilt_counts.counts_array(level),
        ), f"count store diverged at level {level}"
    costs = manager.strategy.costs
    rebuilt_costs = CostStore(schema, costs.sizes)
    rebuilt_costs.on_insert_many(resident)
    for level in schema.all_levels():
        maintained = costs._cost[level]
        recomputed = rebuilt_costs._cost[level]
        assert np.array_equal(
            np.isfinite(maintained), np.isfinite(recomputed)
        ), f"computability diverged at level {level}"
        assert np.array_equal(
            costs._cached[level], rebuilt_costs._cached[level]
        ), f"cached flags diverged at level {level}"
        finite = np.isfinite(maintained)
        assert np.allclose(
            maintained[finite], recomputed[finite], rtol=0.0, atol=1e-6
        ), f"cost surface diverged at level {level}"

    # Recovery: the schedule is exhausted and the registry disarmed, so
    # within a few breaker reset windows queries stop degrading.
    probe = Query.full_level(schema, schema.base_level)
    healed = None
    for _ in range(50):
        healed = service.query(probe)
        if not healed.degraded:
            break
        time.sleep(resilient.reset_timeout_s)
    assert healed is not None and not healed.degraded, (
        "breaker failed to re-close after the outage ended"
    )
    assert resilient.breaker_state is BreakerState.CLOSED
    return degraded_with_answers


@pytest.mark.parametrize("store", ["dict", "mmap"])
@pytest.mark.parametrize("seed", CHAOS_SEED_MATRIX)
def test_chaos_seed_matrix(tiny_schema, tiny_facts, seed, store):
    # The whole schedule runs against both chunk stores: the fault sites
    # and resilience wrapper sit above the storage layer, so the mmap
    # store owes the same zero-unhandled-exceptions/exactness story.
    try:
        service, resilient, stream, results = run_chaos(
            tiny_schema, tiny_facts, seed, store=store
        )
        check_run(tiny_schema, tiny_facts, service, resilient, stream, results)
    except Exception:
        record_failing_seed(seed)
        raise


def test_matrix_produces_degraded_but_correct_answers(
    tiny_schema, tiny_facts
):
    # Acceptance: across the fixed matrix, at least one query is answered
    # degraded (cache-only) yet exact, and at least one outage actually
    # opened the breaker.
    degraded_answers = 0
    opened = 0
    for seed in CHAOS_SEED_MATRIX:
        try:
            service, resilient, stream, results = run_chaos(
                tiny_schema, tiny_facts, seed
            )
            degraded_answers += check_run(
                tiny_schema, tiny_facts, service, resilient, stream, results
            )
            opened += sum(
                1
                for (_, to) in resilient.breaker_transitions
                if to == "OPEN"
            )
        except Exception:
            record_failing_seed(seed)
            raise
    assert degraded_answers >= 1, (
        "no seed produced a degraded-but-answered query; the schedules "
        "are not exercising the salvage path"
    )
    assert opened >= 1, "no outage window opened the circuit breaker"


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_fault_schedules(tiny_schema, tiny_facts, seed):
    try:
        service, resilient, stream, results = run_chaos(
            tiny_schema, tiny_facts, seed
        )
        check_run(tiny_schema, tiny_facts, service, resilient, stream, results)
    except Exception:
        record_failing_seed(seed)
        raise
