"""Unit tests for the failpoint registry: triggers, determinism, arming."""

from __future__ import annotations

import threading

import pytest

from repro.faults import (
    FailpointRegistry,
    FaultError,
    TransientBackendError,
    arm,
    disarm,
    failpoint,
)


def test_disarmed_failpoint_is_a_noop():
    failpoint("backend.fetch", chunks=3)  # nothing armed: must not raise


def test_scripted_nth_call_trigger():
    registry = FailpointRegistry()
    registry.fail("site", TransientBackendError, calls={2, 4})
    with registry.armed():
        failpoint("site")
        with pytest.raises(TransientBackendError):
            failpoint("site")
        failpoint("site")
        with pytest.raises(TransientBackendError):
            failpoint("site")
        failpoint("site")
    assert registry.calls("site") == 5
    assert registry.fired("site") == 2


def test_call_range_trigger_models_an_outage_window():
    registry = FailpointRegistry()
    registry.fail("site", TransientBackendError, calls=range(3, 6))
    outcomes = []
    with registry.armed():
        for _ in range(7):
            try:
                failpoint("site")
                outcomes.append("ok")
            except TransientBackendError:
                outcomes.append("fail")
    assert outcomes == ["ok", "ok", "fail", "fail", "fail", "ok", "ok"]


def test_predicate_trigger_sees_context():
    registry = FailpointRegistry()
    registry.fail(
        "site",
        TransientBackendError,
        predicate=lambda ctx, index: ctx.get("chunks", 0) > 2,
    )
    with registry.armed():
        failpoint("site", chunks=1)
        with pytest.raises(TransientBackendError):
            failpoint("site", chunks=5)


def test_probabilistic_trigger_is_seed_deterministic():
    def fire_pattern(seed):
        registry = FailpointRegistry(seed=seed)
        registry.fail("site", TransientBackendError, p=0.5)
        pattern = []
        with registry.armed():
            for _ in range(50):
                try:
                    failpoint("site")
                    pattern.append(False)
                except TransientBackendError:
                    pattern.append(True)
        return pattern

    assert fire_pattern(7) == fire_pattern(7)
    assert fire_pattern(7) != fire_pattern(8)
    assert any(fire_pattern(7)), "p=0.5 over 50 calls must fire sometimes"


def test_times_caps_rule_firings():
    registry = FailpointRegistry()
    registry.fail("site", TransientBackendError, times=2)
    fired = 0
    with registry.armed():
        for _ in range(5):
            try:
                failpoint("site")
            except TransientBackendError:
                fired += 1
    assert fired == 2


def test_delay_rule_sleeps_and_falls_through():
    slept = []
    registry = FailpointRegistry(sleep=slept.append)
    registry.delay("site", latency_ms=25.0, calls={1})
    with registry.armed():
        failpoint("site")
        failpoint("site")
    assert slept == [0.025]
    assert registry.fired("site") == 1


def test_error_instances_are_raised_as_given():
    registry = FailpointRegistry()
    error = TransientBackendError("the very one")
    registry.fail("site", error, calls={1})
    with registry.armed():
        with pytest.raises(TransientBackendError, match="the very one"):
            failpoint("site")


def test_reset_zeroes_counters_but_keeps_rules():
    registry = FailpointRegistry()
    registry.fail("site", TransientBackendError, calls={1})
    with registry.armed():
        with pytest.raises(TransientBackendError):
            failpoint("site")
    registry.reset()
    assert registry.calls("site") == 0
    with registry.armed():
        with pytest.raises(TransientBackendError):
            failpoint("site")  # call #1 again after reset


def test_double_arm_of_a_different_registry_is_rejected():
    first, second = FailpointRegistry(), FailpointRegistry()
    arm(first)
    try:
        arm(first)  # re-arming the same registry is fine
        with pytest.raises(FaultError):
            arm(second)
    finally:
        disarm()


def test_concurrent_hits_count_exactly():
    registry = FailpointRegistry()
    hits_per_thread = 500

    def worker():
        for _ in range(hits_per_thread):
            failpoint("site")

    with registry.armed():
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert registry.calls("site") == 8 * hits_per_thread
