"""Snapshot restore under corruption: drop the bad chunk, keep the rest."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AggregateCache, Query
from repro.cache.snapshot import load_cache_snapshot, save_cache_snapshot
from repro.faults import CorruptChunkError, FailpointRegistry
from repro.harness.service_bench import (
    check_bytes_invariant,
    check_counts_invariant,
)
from repro.obs import Observability


@pytest.fixture
def warm_manager(tiny_schema, tiny_backend):
    manager = AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    manager.query(Query.full_level(tiny_schema, (1, 1, 0)))
    return manager


def fresh_manager(tiny_schema, tiny_backend, **kwargs):
    kwargs.setdefault("strategy", "vcmc")
    return AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        preload=False,
        obs=kwargs.pop("obs", None),
        **kwargs,
    )


def test_injected_corruption_skips_only_that_chunk(
    warm_manager, tiny_schema, tiny_backend, tmp_path
):
    path = tmp_path / "cache.npz"
    saved = save_cache_snapshot(warm_manager, path)
    assert saved >= 3

    obs = Observability.in_memory()
    fresh = fresh_manager(tiny_schema, tiny_backend, obs=obs)
    registry = FailpointRegistry()
    registry.fail(
        "snapshot.load",
        CorruptChunkError,
        predicate=lambda ctx, _index: ctx["index"] in (0, 2),
    )
    with registry.armed():
        restored = load_cache_snapshot(fresh, path)

    assert restored == saved - 2
    assert len(fresh.cache) == saved - 2
    missing = set(warm_manager.cache.resident_keys()) - set(
        fresh.cache.resident_keys()
    )
    assert len(missing) == 2
    assert obs.metrics.snapshot()["counters"]["snapshot.corrupt_chunks"] == 2
    corrupt_events = obs.ring_events("snapshot.corrupt")
    assert sorted(
        (tuple(e["level"]), e["number"]) for e in corrupt_events
    ) == sorted(missing)
    # Count/cost state was rebuilt for exactly the surviving set.
    assert check_bytes_invariant(fresh)
    assert check_counts_invariant(fresh)


def test_surviving_chunks_answer_queries_exactly(
    warm_manager, tiny_schema, tiny_backend, tmp_path
):
    path = tmp_path / "cache.npz"
    save_cache_snapshot(warm_manager, path)
    fresh = fresh_manager(tiny_schema, tiny_backend)
    registry = FailpointRegistry(seed=5)
    registry.fail("snapshot.load", CorruptChunkError, p=0.3)
    with registry.armed():
        load_cache_snapshot(fresh, path)

    # Whatever survived, the two managers agree wherever both answer.
    reference = fresh_manager(tiny_schema, tiny_backend)
    load_cache_snapshot(reference, path)
    query = Query.full_level(tiny_schema, (1, 1, 0))
    lhs = fresh.query(query)
    rhs = reference.query(query)
    assert lhs.total_value() == pytest.approx(rhs.total_value())
    assert check_counts_invariant(fresh)


def test_genuinely_corrupt_payload_is_rejected(
    warm_manager, tiny_schema, tiny_backend, tmp_path
):
    # Real corruption (not injected): truncate one chunk's counts array
    # so it disagrees with its values.  The loader must skip it and
    # restore everything else.
    path = tmp_path / "cache.npz"
    saved = save_cache_snapshot(warm_manager, path)
    with np.load(path, allow_pickle=True) as data:
        arrays = {name: data[name] for name in data.files}
    victim = next(
        i for i in range(saved) if len(arrays[f"chunk_{i}_values"]) > 0
    )
    arrays[f"chunk_{victim}_counts"] = arrays[f"chunk_{victim}_counts"][:-1]
    np.savez_compressed(path, **arrays)

    fresh = fresh_manager(tiny_schema, tiny_backend)
    restored = load_cache_snapshot(fresh, path)
    assert restored == saved - 1
    assert check_bytes_invariant(fresh)
    assert check_counts_invariant(fresh)


def test_fault_free_restore_is_unchanged(
    warm_manager, tiny_schema, tiny_backend, tmp_path
):
    path = tmp_path / "cache.npz"
    saved = save_cache_snapshot(warm_manager, path)
    fresh = fresh_manager(tiny_schema, tiny_backend)
    assert load_cache_snapshot(fresh, path) == saved
    assert set(fresh.cache.resident_keys()) == set(
        warm_manager.cache.resident_keys()
    )
