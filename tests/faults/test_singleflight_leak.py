"""Regression tests: no single-flight entry may outlive its query.

The latent leak this PR fixes: a leader that *published* its flights and
then raised before phase 4's ``release`` (an admission fault, a failed
follower wait on another query's flight) left the published flights in
the table forever — every future misser of those chunks would "share" a
chunk that was never admitted, and the backend was never asked again.
"""

from __future__ import annotations

import threading

import pytest

from repro import AggregateCache, BackendDatabase, ConcurrentAggregateCache, CostModel, Query
from repro.faults import (
    CorruptChunkError,
    FailpointRegistry,
    TransientBackendError,
)


def make_service(tiny_schema, tiny_facts, **kwargs):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    kwargs.setdefault("strategy", "vcmc")
    kwargs.setdefault("preload", False)
    manager = AggregateCache(tiny_schema, backend, 1 << 30, **kwargs)
    return ConcurrentAggregateCache(manager)


def test_admission_fault_abandons_led_flights(tiny_schema, tiny_facts):
    service = make_service(tiny_schema, tiny_facts)
    query = Query.full_level(tiny_schema, tiny_schema.base_level)
    registry = FailpointRegistry()
    registry.fail("cache.insert", CorruptChunkError, calls={1})
    with registry.armed():
        with pytest.raises(CorruptChunkError):
            service.query(query)
        # The fix: the flight guard abandons every claimed leadership on
        # the way out.  Before it, the published flights stayed here
        # forever.
        assert service.flights.in_progress() == 0
    # And the chunks are re-fetchable: nothing stale is served.
    result = service.query(query)
    assert len(result.chunks) == query.num_chunks
    assert result.from_backend == query.num_chunks
    follow_up = service.query(query)
    assert follow_up.complete_hit


def test_follower_observes_leader_failure_without_refetching(
    tiny_schema, tiny_facts
):
    gate = threading.Event()
    registry = FailpointRegistry(sleep=lambda _s: gate.wait(10))
    registry.delay("backend.fetch", latency_ms=1.0, calls={1})
    registry.fail("backend.fetch", TransientBackendError, calls={1})

    service = make_service(tiny_schema, tiny_facts, degraded_mode=True)
    query = Query.full_level(tiny_schema, tiny_schema.base_level)
    results = {}

    def run(name):
        results[name] = service.query(query)

    with registry.armed():
        leader = threading.Thread(target=run, args=("leader",))
        leader.start()
        # The leader is asleep inside the backend holding its claims.
        for _ in range(1000):
            if service.flights.in_progress() == query.num_chunks:
                break
            threading.Event().wait(0.005)
        assert service.flights.in_progress() == query.num_chunks

        follower = threading.Thread(target=run, args=("follower",))
        follower.start()
        for _ in range(1000):
            if service.flights.joined >= query.num_chunks:
                break
            threading.Event().wait(0.005)
        assert service.flights.joined == query.num_chunks

        gate.set()  # leader wakes, its fetch raises, flights fail
        leader.join(timeout=10)
        follower.join(timeout=10)

    assert registry.calls("backend.fetch") == 1, (
        "the follower must observe the leader's failure, not re-hit "
        "the dead backend"
    )
    for result in results.values():
        assert result.degraded
        assert result.coverage == 0.0
        assert len(result.unanswered) == query.num_chunks
    assert service.flights.in_progress() == 0
    assert service.manager.degraded_queries == 2

    # After the outage the chunks fetch normally.
    healed = service.query(query)
    assert not healed.degraded
    assert healed.from_backend == query.num_chunks
