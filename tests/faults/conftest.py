"""Fault-injection fixtures: every test leaves the failpoints disarmed."""

from __future__ import annotations

import pytest

from repro.faults import disarm


@pytest.fixture(autouse=True)
def _disarm_after_each_test():
    """A failing assertion inside an ``armed()`` block must not leak an
    armed registry into the next test."""
    yield
    disarm()
