"""Chaos: seeded append waves interleaved with 6-worker serving.

Each run drives a seeded query stream through
:class:`ConcurrentAggregateCache` in segments, firing a warehouse append
(:meth:`ConcurrentAggregateCache.refresh_from_backend`, delta patch wave
by default) between segments.  The properties:

* **exact answers against the post-append fact file** — every chunk of
  every segment equals a brute-force aggregation of the fact table as it
  stood when the segment ran (the merge of the initial table and every
  wave applied so far) — exact ``==``, not approx: the integer-valued
  measures make additive maintenance exact;
* **state integrity** — after all waves, Count/Cost state equals a
  from-scratch rebuild off the final resident set, and the backend's
  tuple count equals the merged fact file's;
* **isolation under races** — with appends firing from a separate
  thread mid-serve, no query raises and every answered chunk matches
  the pre- or post-wave truth for that chunk (the write lock forbids
  anything in between).

A failing seed is appended to ``$CHAOS_REPLAY_PATH`` (default
``artifacts/chaos_replay.txt``, git-ignored), same protocol as
``test_chaos_properties``.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import numpy as np

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    CountStore,
    QueryStreamGenerator,
    generate_fact_table,
)
from repro.backend.generator import FactTable, merge_fact_tables
from repro.core.costs import CostStore
from repro.util.rng import make_rng
from tests.faults.test_chaos_properties import (
    CHAOS_SEED_MATRIX,
    record_failing_seed,
)
from tests.helpers import direct_aggregate, expected_cells_in_chunk

WORKERS = 6
NUM_WAVES = 3
QUERIES_PER_SEGMENT = 12


def make_wave(schema, rng) -> FactTable:
    """One deterministic append batch (20-80 raw uniform draws)."""
    return generate_fact_table(
        schema,
        num_tuples=int(rng.integers(20, 80)),
        seed=int(rng.integers(0, 2**31)),
    )


def build_service(schema, facts, store: str = "dict"):
    backend = BackendDatabase(schema, facts, CostModel(), store=store)
    manager = AggregateCache(
        schema,
        backend,
        capacity_bytes=max(int(backend.base_size_bytes * 0.7), 1),
        strategy="vcmc",
        policy="two_level",
        cost_rel_tol=0.0,
    )
    return ConcurrentAggregateCache(manager, flight_timeout_s=15.0)


def run_append_chaos(
    schema, facts, seed: int, mode: str, store: str = "dict"
):
    """Serve segments of a seeded stream with an append between each.

    Returns ``(service, parts, segments)`` where ``segments`` holds, per
    segment, the queries, their results, and how many fact-table parts
    (initial + waves) had been applied when the segment ran.
    """
    service = build_service(schema, facts, store=store)
    stream = list(
        QueryStreamGenerator(schema, max_extent=3, seed=seed).generate(
            (NUM_WAVES + 1) * QUERIES_PER_SEGMENT
        )
    )
    rng = make_rng(seed + 1)
    parts: list[FactTable] = [facts]
    segments = []
    for wave_index in range(NUM_WAVES + 1):
        segment = stream[
            wave_index * QUERIES_PER_SEGMENT:
            (wave_index + 1) * QUERIES_PER_SEGMENT
        ]
        results = service.serve(segment, workers=WORKERS)
        segments.append((segment, results, len(parts)))
        if wave_index < NUM_WAVES:
            wave = make_wave(schema, rng)
            outcome = service.refresh_from_backend(wave, mode=mode)
            assert outcome.mode == mode
            parts.append(wave)
    return service, parts, segments


def check_append_run(schema, service, parts, segments) -> None:
    manager = service.manager
    # Per-generation ground truths, computed lazily per level.
    truth_cells: dict[tuple[int, tuple], dict] = {}

    def cells_at(generation: int, level) -> dict:
        key = (generation, level)
        if key not in truth_cells:
            truth_cells[key] = direct_aggregate(
                merge_fact_tables(parts[:generation]), level
            )
        return truth_cells[key]

    for segment, results, generation in segments:
        assert len(results) == len(segment)
        for query, result in zip(segment, results):
            numbers = query.chunk_numbers(schema)
            assert [c.number for c in result.chunks] == list(numbers)
            cells = cells_at(generation, query.level)
            for chunk in result.chunks:
                expected = expected_cells_in_chunk(
                    schema, cells, query.level, chunk.number
                )
                # Exact equality, not approx: the generator's measures
                # are integer-valued, so the patch wave owes bit-exact
                # sums regardless of merge order.
                assert chunk.cell_dict() == expected, (
                    query, chunk.number, generation,
                )

    # The backend equals a fresh load of the merged fact file.
    merged = merge_fact_tables(parts)
    assert manager.backend.num_tuples == merged.num_tuples
    assert manager.backend.refresh_generation == len(parts) - 1
    # The estimator followed the appends (satellite: incremental
    # recalibration on refresh).
    assert manager.sizes.total_base_tuples == merged.num_tuples

    # Count/Cost state equals a rebuild from the final resident set.
    resident = list(manager.cache.resident_keys())
    rebuilt_counts = CountStore(schema)
    rebuilt_counts.on_insert_many(resident)
    for level in schema.all_levels():
        assert np.array_equal(
            manager.strategy.counts.counts_array(level),
            rebuilt_counts.counts_array(level),
        ), f"count store diverged at level {level}"
    costs = manager.strategy.costs
    rebuilt_costs = CostStore(schema, costs.sizes)
    rebuilt_costs.on_insert_many(resident)
    for level in schema.all_levels():
        maintained = costs._cost[level]
        recomputed = rebuilt_costs._cost[level]
        assert np.array_equal(
            np.isfinite(maintained), np.isfinite(recomputed)
        ), f"computability diverged at level {level}"
        finite = np.isfinite(maintained)
        assert np.allclose(
            maintained[finite], recomputed[finite], rtol=0.0, atol=1e-6
        ), f"cost surface diverged at level {level}"


@pytest.mark.parametrize("seed", CHAOS_SEED_MATRIX)
def test_append_chaos_seed_matrix(tiny_schema, tiny_facts, seed):
    try:
        service, parts, segments = run_append_chaos(
            tiny_schema, tiny_facts, seed, mode="delta"
        )
        check_append_run(tiny_schema, service, parts, segments)
    except Exception:
        record_failing_seed(seed)
        raise


@pytest.mark.parametrize("seed", CHAOS_SEED_MATRIX)
def test_append_chaos_seed_matrix_mmap_store(tiny_schema, tiny_facts, seed):
    # Same schedule, columnar store: every append publishes a new on-disk
    # generation; answers stay exact against the merged fact file.
    try:
        service, parts, segments = run_append_chaos(
            tiny_schema, tiny_facts, seed, mode="delta", store="mmap"
        )
        check_append_run(tiny_schema, service, parts, segments)
    except Exception:
        record_failing_seed(seed)
        raise


@pytest.mark.parametrize("mode", ["refetch", "evict"])
def test_append_chaos_other_modes(tiny_schema, tiny_facts, mode):
    seed = CHAOS_SEED_MATRIX[0]
    try:
        service, parts, segments = run_append_chaos(
            tiny_schema, tiny_facts, seed, mode=mode
        )
        check_append_run(tiny_schema, service, parts, segments)
    except Exception:
        record_failing_seed(seed)
        raise


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["delta", "refetch", "evict"]),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_append_schedules(tiny_schema, tiny_facts, seed, mode):
    try:
        service, parts, segments = run_append_chaos(
            tiny_schema, tiny_facts, seed, mode=mode
        )
        check_append_run(tiny_schema, service, parts, segments)
    except Exception:
        record_failing_seed(seed)
        raise


@pytest.mark.parametrize("store", ["dict", "mmap"])
@pytest.mark.parametrize("seed", CHAOS_SEED_MATRIX[:2])
def test_append_races_with_serving(tiny_schema, tiny_facts, seed, store):
    """Appends fired from a separate thread mid-serve: no query raises,
    and every answered chunk matches SOME generation's truth — the write
    lock makes each refresh atomic with respect to any single lock hold,
    so a chunk can never show a half-applied patch.  Under the mmap
    store this additionally exercises the file-level CoW: a mid-append
    reader holds one published on-disk generation (directory + mapped
    prefix) for its whole scan."""
    try:
        service = build_service(tiny_schema, tiny_facts, store=store)
        stream = list(
            QueryStreamGenerator(tiny_schema, max_extent=3, seed=seed)
            .generate(3 * QUERIES_PER_SEGMENT)
        )
        rng = make_rng(seed + 1)
        parts: list[FactTable] = [tiny_facts]
        waves = [make_wave(tiny_schema, rng) for _ in range(NUM_WAVES)]

        serve_error: list[BaseException] = []
        results: list = []

        def serve() -> None:
            try:
                results.extend(service.serve(stream, workers=WORKERS))
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                serve_error.append(exc)

        thread = threading.Thread(target=serve)
        thread.start()
        for wave in waves:
            service.refresh_from_backend(wave, mode="delta")
            parts.append(wave)
        thread.join(timeout=120)
        assert not thread.is_alive(), "serving deadlocked against appends"
        assert not serve_error, serve_error

        # Candidate truths: the fact file at every generation.
        truths_by_level: dict = {}

        def candidates(level):
            if level not in truths_by_level:
                truths_by_level[level] = [
                    direct_aggregate(merge_fact_tables(parts[:k]), level)
                    for k in range(1, len(parts) + 1)
                ]
            return truths_by_level[level]

        assert len(results) == len(stream)
        for query, result in zip(stream, results):
            for chunk in result.chunks:
                actual = chunk.cell_dict()
                assert any(
                    actual == expected_cells_in_chunk(
                        tiny_schema, cells, query.level, chunk.number
                    )
                    for cells in candidates(query.level)
                ), (query, chunk.number)
    except Exception:
        record_failing_seed(seed)
        raise
