"""Disarmed equivalence: the resilience layers must be invisible.

With no failpoints armed and no faults occurring, a manager built with
the full resilience stack (``ResilientBackend`` wrapper + degraded mode)
must produce field-identical results AND identical observability
counters to the plain manager over the full seeded query stream.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    CostModel,
    Query,
    QueryStreamGenerator,
    ResilientBackend,
)
from repro.backend.resilient import BreakerState
from repro.obs import Observability

COMPARED_FIELDS = (
    "complete_hit",
    "direct_hits",
    "aggregated",
    "from_backend",
    "tuples_aggregated",
    "lookup_visits",
    "state_updates",
    "reinforcements_skipped",
    "degraded",
    "coverage",
    "unanswered",
)

#: Timing histograms whose observed values are wall-clock; only their
#: counts must agree between the two runs.
def _comparable_snapshot(obs):
    snapshot = obs.metrics.snapshot()
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histogram_counts": {
            name: summary.get("count", 0)
            for name, summary in snapshot["histograms"].items()
        },
    }


def run_stream(tiny_schema, tiny_facts, resilient: bool):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    obs = Observability.in_memory()
    if resilient:
        backend = ResilientBackend(backend, seed=13, obs=obs)
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=max(int(backend.base_size_bytes * 0.6), 1),
        strategy="vcmc",
        policy="two_level",
        degraded_mode=resilient,
        obs=obs,
    )
    stream = list(
        QueryStreamGenerator(tiny_schema, max_extent=3, seed=4242).generate(80)
    )
    results = [manager.query(q) for q in stream]
    return manager, backend, obs, results


def test_fault_free_stack_is_field_identical(tiny_schema, tiny_facts):
    plain_manager, _, plain_obs, plain = run_stream(
        tiny_schema, tiny_facts, resilient=False
    )
    armoured_manager, backend, armoured_obs, armoured = run_stream(
        tiny_schema, tiny_facts, resilient=True
    )

    for index, (a, b) in enumerate(zip(plain, armoured)):
        for field in COMPARED_FIELDS:
            assert getattr(a, field) == getattr(b, field), (index, field)
        assert [c.key for c in a.chunks] == [c.key for c in b.chunks], index
        for lhs, rhs in zip(a.chunks, b.chunks):
            assert lhs.cell_dict() == rhs.cell_dict(), index

    # Manager accounting and cache end-state agree exactly.
    assert armoured_manager.degraded_queries == 0
    assert armoured_manager.complete_hits == plain_manager.complete_hits
    assert (
        armoured_manager.cache.used_bytes == plain_manager.cache.used_bytes
    )
    assert sorted(armoured_manager.cache.resident_keys()) == sorted(
        plain_manager.cache.resident_keys()
    )

    # The resilience layer never engaged.
    assert backend.retries == 0
    assert backend.fast_failures == 0
    assert backend.breaker_transitions == []
    assert backend.breaker_state is BreakerState.CLOSED

    # Observability output is identical: same counters, same gauges, same
    # histogram counts — not one extra event or metric from the armour.
    assert _comparable_snapshot(armoured_obs) == _comparable_snapshot(
        plain_obs
    )
    plain_kinds = [e["kind"] for e in plain_obs.ring_events()]
    armoured_kinds = [e["kind"] for e in armoured_obs.ring_events()]
    assert plain_kinds == armoured_kinds


def test_fault_free_query_events_are_bit_identical(tiny_schema, tiny_facts):
    _, _, plain_obs, _ = run_stream(tiny_schema, tiny_facts, resilient=False)
    _, _, armoured_obs, _ = run_stream(tiny_schema, tiny_facts, resilient=True)
    def drop_timing(e):
        return {
            k: v
            for k, v in e.items()
            if not k.endswith("_ms") and k != "seq"
        }
    plain_events = [drop_timing(e) for e in plain_obs.ring_events("query")]
    armoured_events = [
        drop_timing(e) for e in armoured_obs.ring_events("query")
    ]
    assert plain_events == armoured_events


def test_total_values_agree(tiny_schema, tiny_facts):
    _, _, _, plain = run_stream(tiny_schema, tiny_facts, resilient=False)
    _, _, _, armoured = run_stream(tiny_schema, tiny_facts, resilient=True)
    for a, b in zip(plain, armoured):
        assert a.total_value() == pytest.approx(b.total_value())


def test_disarmed_failpoints_leave_single_queries_untouched(
    tiny_schema, tiny_facts
):
    # Bare sanity on the guard itself: no registry armed, so the five
    # failpoint sites are inert reads on the hot path.
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    result = manager.query(Query.full_level(tiny_schema, (1, 1, 0)))
    assert not result.degraded
    assert result.coverage == 1.0
    assert result.unanswered == ()
