"""Degraded (cache-only) serving when the backend is down."""

from __future__ import annotations

import pytest

from repro import AggregateCache, Query
from repro.faults import FailpointRegistry, TransientBackendError
from repro.harness.service_bench import (
    check_bytes_invariant,
    check_counts_invariant,
)
from repro.obs import Observability
from tests.helpers import direct_aggregate, expected_cells_in_chunk


def make_manager(tiny_schema, tiny_backend, **kwargs):
    kwargs.setdefault("capacity_bytes", 1 << 30)
    kwargs.setdefault("strategy", "vcmc")
    kwargs.setdefault("preload", False)
    kwargs.setdefault("degraded_mode", True)
    return AggregateCache(tiny_schema, tiny_backend, **kwargs)


def outage(registry=None):
    registry = registry or FailpointRegistry()
    registry.fail("backend.fetch", TransientBackendError)
    return registry


def test_default_mode_still_raises(tiny_schema, tiny_backend):
    manager = make_manager(tiny_schema, tiny_backend, degraded_mode=False)
    with outage().armed():
        with pytest.raises(TransientBackendError):
            manager.query(Query.full_level(tiny_schema, (1, 1, 0)))


def test_partial_coverage_answers_are_exact(
    tiny_schema, tiny_backend, tiny_facts
):
    manager = make_manager(tiny_schema, tiny_backend)
    level = tiny_schema.base_level
    warm = Query(level, ((1, 3), (0, 2), (0, 1)))
    manager.query(warm)
    cached = set(warm.chunk_numbers(tiny_schema))

    full = Query.full_level(tiny_schema, level)
    everything = full.chunk_numbers(tiny_schema)
    with outage().armed():
        result = manager.query(full)

    assert result.degraded
    assert not result.complete_hit
    assert set(result.unanswered) == set(everything) - cached
    assert result.coverage == pytest.approx(len(cached) / len(everything))
    assert len(result.chunks) + len(result.unanswered) == len(everything)
    truth = direct_aggregate(tiny_facts, level)
    for chunk in result.chunks:
        expected = expected_cells_in_chunk(
            tiny_schema, truth, level, chunk.number
        )
        assert chunk.cell_dict() == pytest.approx(expected)
    assert manager.degraded_queries == 1
    assert check_bytes_invariant(manager)
    assert check_counts_invariant(manager)


def test_recovery_after_outage_serves_the_gaps(tiny_schema, tiny_backend):
    manager = make_manager(tiny_schema, tiny_backend)
    level = tiny_schema.base_level
    warm = Query(level, ((1, 3), (0, 2), (0, 1)))
    manager.query(warm)
    full = Query.full_level(tiny_schema, level)
    with outage().armed():
        degraded = manager.query(full)
    assert degraded.unanswered

    healed = manager.query(full)  # failpoints disarmed: backend is back
    assert not healed.degraded
    assert healed.coverage == 1.0
    assert healed.unanswered == ()
    assert healed.from_backend == len(degraded.unanswered)
    assert len(healed.chunks) == full.num_chunks
    again = manager.query(full)
    assert again.complete_hit


def test_aggregation_salvage_gives_full_coverage(
    tiny_schema, tiny_backend, tiny_facts, monkeypatch
):
    # Redirect every computable chunk to the backend (the Section 5.2
    # cost gate, forced): phase 3 then fails, and the salvage pass must
    # recover the exact answers by aggregating inside the cache.
    manager = make_manager(
        tiny_schema, tiny_backend, use_cost_optimizer=True
    )
    manager.query(Query.full_level(tiny_schema, tiny_schema.base_level))
    monkeypatch.setattr(
        manager, "_backend_is_cheaper", lambda *args: True
    )
    level = (1, 1, 0)
    with outage().armed():
        result = manager.query(Query.full_level(tiny_schema, level))
    assert result.degraded
    assert result.unanswered == ()
    assert result.coverage == 1.0
    assert result.complete_hit  # every chunk answered, backend untouched
    assert result.aggregated == len(result.chunks)
    truth = direct_aggregate(tiny_facts, level)
    cells = {}
    for chunk in result.chunks:
        cells.update(chunk.cell_dict())
    assert cells == pytest.approx(truth)
    assert check_counts_invariant(manager)


def test_unknown_errors_propagate_even_in_degraded_mode(
    tiny_schema, tiny_backend
):
    manager = make_manager(tiny_schema, tiny_backend)
    registry = FailpointRegistry()
    registry.fail("backend.fetch", ValueError)  # not a FaultError
    with registry.armed():
        with pytest.raises(ValueError):
            manager.query(Query.full_level(tiny_schema, (1, 1, 0)))


def test_degraded_obs_accounting(tiny_schema, tiny_backend):
    obs = Observability.in_memory()
    manager = make_manager(tiny_schema, tiny_backend, obs=obs)
    level = tiny_schema.base_level
    warm = Query(level, ((1, 3), (0, 2), (0, 1)))
    manager.query(warm)
    full = Query.full_level(tiny_schema, level)
    with outage().armed():
        result = manager.query(full)
    counters = obs.metrics.snapshot()["counters"]
    assert counters["backend.degraded_queries"] == 1
    assert counters["backend.degraded_answers"] == len(result.chunks)
    assert counters["backend.unanswered_chunks"] == len(result.unanswered)
    query_events = obs.ring_events("query")
    assert query_events[-1]["degraded"] is True
    assert query_events[-1]["unanswered"] == list(result.unanswered)
    assert "degraded" not in query_events[0]  # fault-free event untouched
