"""ORDER BY / LIMIT tests for the OLAP query language."""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    OlapSession,
    generate_fact_table,
)
from repro.olap.binder import QueryBindError
from repro.olap.lexer import QuerySyntaxError
from repro.olap.nodes import OrderBy
from repro.olap.parser import parse_query
from repro.schema import apb_tiny_schema


@pytest.fixture(scope="module")
def session():
    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=300, seed=23)
    backend = BackendDatabase(schema, facts)
    cache = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    return OlapSession(cache)


class TestParsing:
    def test_order_by_position(self):
        query = parse_query("SELECT SUM(x) GROUP BY A.L1 ORDER BY 2 DESC")
        assert query.order_by == OrderBy(column=2, descending=True)

    def test_order_by_aggregate(self):
        query = parse_query("SELECT SUM(x) ORDER BY SUM(x)")
        assert query.order_by == OrderBy(column="SUM(x)", descending=False)

    def test_order_by_level_ref_and_asc(self):
        query = parse_query("SELECT SUM(x) GROUP BY A.L1 ORDER BY A.L1 ASC")
        assert query.order_by == OrderBy(column="A.L1", descending=False)

    def test_limit(self):
        query = parse_query("SELECT SUM(x) GROUP BY A.L1 LIMIT 3")
        assert query.limit == 3

    def test_str_roundtrip(self):
        text = "SELECT SUM(x) GROUP BY A.L1 ORDER BY SUM(x) DESC LIMIT 2"
        query = parse_query(text)
        assert parse_query(str(query)) == query

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT SUM(x) ORDER BY",
            "SELECT SUM(x) ORDER BY 0",
            "SELECT SUM(x) LIMIT 0",
            "SELECT SUM(x) LIMIT",
            "SELECT SUM(x) ORDER BY =",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestExecution:
    def test_order_by_measure_descending(self, session):
        rs = session.query(
            "SELECT SUM(UnitSales) GROUP BY Product.L2 "
            "ORDER BY SUM(UnitSales) DESC"
        )
        sums = [row[1] for row in rs.rows]
        assert sums == sorted(sums, reverse=True)

    def test_order_by_position(self, session):
        rs = session.query(
            "SELECT SUM(UnitSales) GROUP BY Product.L2 ORDER BY 2"
        )
        sums = [row[1] for row in rs.rows]
        assert sums == sorted(sums)

    def test_order_by_group_column_name(self, session):
        rs = session.query(
            "SELECT SUM(UnitSales) GROUP BY Product.L2 "
            "ORDER BY Product.L2 DESC"
        )
        labels = [row[0] for row in rs.rows]
        assert labels == sorted(labels, reverse=True)

    def test_limit_truncates(self, session):
        rs = session.query(
            "SELECT SUM(UnitSales) GROUP BY Product.L2 LIMIT 2"
        )
        assert len(rs) == 2

    def test_top_k_pattern(self, session):
        full = session.query(
            "SELECT SUM(UnitSales) GROUP BY Product.L2 "
            "ORDER BY SUM(UnitSales) DESC"
        )
        top = session.query(
            "SELECT SUM(UnitSales) GROUP BY Product.L2 "
            "ORDER BY SUM(UnitSales) DESC LIMIT 1"
        )
        assert top.rows == full.rows[:1]

    def test_unknown_order_column(self, session):
        with pytest.raises(QueryBindError, match="not an output column"):
            session.query("SELECT SUM(UnitSales) ORDER BY Customer.L1")

    def test_position_out_of_range(self, session):
        with pytest.raises(QueryBindError, match="out of range"):
            session.query("SELECT SUM(UnitSales) ORDER BY 5")
