"""The query language must be strategy- and cache-state-agnostic:
identical answers whatever is underneath."""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    MemberCatalog,
    OlapSession,
    generate_fact_table,
)
from repro.schema import apb_tiny_schema

QUERIES = [
    "SELECT SUM(UnitSales)",
    "SELECT SUM(UnitSales), COUNT(UnitSales) GROUP BY Product.L1",
    "SELECT AVG(UnitSales) GROUP BY Product.L2, Time.L1",
    "SELECT SUM(UnitSales) WHERE Product.L1 = 1 AND Customer.L1 IN (0)",
    (
        "SELECT SUM(UnitSales) GROUP BY Customer.L1 "
        "WHERE Time.L1 BETWEEN 0 AND 1 ORDER BY SUM(UnitSales) DESC"
    ),
]


@pytest.fixture(scope="module")
def world():
    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=350, seed=303)
    backend = BackendDatabase(schema, facts)
    return schema, backend


def session_for(schema, backend, **kwargs):
    cache = AggregateCache(schema, backend, **kwargs)
    return OlapSession(cache, MemberCatalog.synthetic(schema))


@pytest.mark.parametrize("text", QUERIES)
def test_strategies_agree(world, text):
    schema, backend = world
    reference = None
    for strategy in ("noagg", "esm", "esmc", "vcm", "vcmc"):
        session = session_for(
            schema, backend, capacity_bytes=1 << 20, strategy=strategy
        )
        rows = session.query(text).rows
        if reference is None:
            reference = rows
        else:
            assert _rows_close(rows, reference), (strategy, text)


def _rows_close(a, b) -> bool:
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for cell_a, cell_b in zip(row_a, row_b):
            if isinstance(cell_a, float):
                if abs(cell_a - float(cell_b)) > 1e-6:
                    return False
            elif cell_a != cell_b:
                return False
    return True


@pytest.mark.parametrize("text", QUERIES)
def test_cold_and_warm_cache_agree(world, text):
    schema, backend = world
    cold = session_for(
        schema,
        backend,
        capacity_bytes=100,  # forces backend traffic
        strategy="vcmc",
        preload=False,
    )
    warm = session_for(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    assert _rows_close(cold.query(text).rows, warm.query(text).rows)


def test_repeat_queries_agree_under_churn(world):
    schema, backend = world
    session = session_for(
        schema,
        backend,
        capacity_bytes=400,
        strategy="vcmc",
        preload=False,
    )
    text = "SELECT SUM(UnitSales) GROUP BY Product.L1"
    first = session.query(text).rows
    # Interleave other queries to churn the tiny cache, then re-ask.
    for other in QUERIES:
        session.query(other)
    assert _rows_close(session.query(text).rows, first)
