"""Lexer and parser tests for the OLAP query language."""

from __future__ import annotations

import pytest

from repro.olap.lexer import QuerySyntaxError, tokenize
from repro.olap.nodes import Aggregate, PredicateOp
from repro.olap.parser import parse_query


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT SUM(UnitSales)")
        kinds = [t.kind for t in tokens]
        assert kinds == ["SELECT", "SUM", "(", "IDENT", ")", "EOF"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Sum(x) group by a.b")
        assert tokens[0].kind == "SELECT"
        assert tokens[1].kind == "SUM"
        assert tokens[5].kind == "GROUP"

    def test_strings_both_quote_styles(self):
        tokens = tokenize("'abc' \"d e\"")
        assert [t.text for t in tokens[:2]] == ["abc", "d e"]
        assert all(t.kind == "STRING" for t in tokens[:2])

    def test_integers(self):
        tokens = tokenize("42 007")
        assert [t.text for t in tokens[:2]] == ["42", "007"]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT  SUM")
        assert tokens[0].position == 0
        assert tokens[1].position == 8

    def test_bad_character(self):
        with pytest.raises(QuerySyntaxError, match="offset 7"):
            tokenize("SELECT ;")


class TestParser:
    def test_minimal_query(self):
        query = parse_query("SELECT SUM(UnitSales)")
        assert len(query.aggregates) == 1
        assert query.aggregates[0].function is Aggregate.SUM
        assert query.aggregates[0].measure == "UnitSales"
        assert query.group_by == ()
        assert query.where == ()

    def test_multiple_aggregates(self):
        query = parse_query("SELECT SUM(x), COUNT(x), AVG(x)")
        assert [a.function for a in query.aggregates] == [
            Aggregate.SUM,
            Aggregate.COUNT,
            Aggregate.AVG,
        ]

    def test_group_by(self):
        query = parse_query(
            "SELECT SUM(x) GROUP BY Product.Division, Time.Year"
        )
        assert [str(g) for g in query.group_by] == [
            "Product.Division",
            "Time.Year",
        ]

    def test_numeric_level_reference(self):
        query = parse_query("SELECT SUM(x) GROUP BY Product.2")
        assert query.group_by[0].level == "2"

    def test_where_eq(self):
        query = parse_query("SELECT SUM(x) WHERE Time.Year = 1")
        predicate = query.where[0]
        assert predicate.op is PredicateOp.EQ
        assert predicate.values == (1,)

    def test_where_in(self):
        query = parse_query("SELECT SUM(x) WHERE Channel.Channel IN (0, 2, 3)")
        predicate = query.where[0]
        assert predicate.op is PredicateOp.IN
        assert predicate.values == (0, 2, 3)

    def test_where_between(self):
        query = parse_query("SELECT SUM(x) WHERE Time.Month BETWEEN 3 AND 9")
        predicate = query.where[0]
        assert predicate.op is PredicateOp.BETWEEN
        assert predicate.values == (3, 9)

    def test_where_string_members(self):
        query = parse_query("SELECT SUM(x) WHERE Product.Division = 'Division 1'")
        assert query.where[0].values == ("Division 1",)

    def test_multiple_predicates(self):
        query = parse_query(
            "SELECT SUM(x) WHERE Time.Year = 0 AND Channel.Channel IN (1)"
        )
        assert len(query.where) == 2

    def test_full_query_roundtrips_via_str(self):
        text = (
            "SELECT SUM(x), AVG(x) GROUP BY Product.Division "
            "WHERE Time.Year = 1 AND Channel.Channel IN (0, 2)"
        )
        query = parse_query(text)
        assert parse_query(str(query)) == query

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT SUM",
            "SELECT SUM(x) GROUP Product.Division",
            "SELECT SUM(x) WHERE Time.Year",
            "SELECT SUM(x) WHERE Time.Year ~ 3",
            "SELECT SUM(x) WHERE Time.Year IN ()",
            "SELECT SUM(x) trailing",
            "SELECT MAX(x)",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)
