"""Executor tests: OLAP answers must equal direct fact-table aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AggregateCache,
    BackendDatabase,
    MemberCatalog,
    OlapSession,
    generate_fact_table,
)
from repro.schema import apb_tiny_schema


@pytest.fixture(scope="module")
def setup():
    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=400, seed=13)
    backend = BackendDatabase(schema, facts)
    cache = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    session = OlapSession(cache, MemberCatalog.synthetic(schema))
    return schema, facts, session


def direct_sum(facts, mask=None):
    values = facts.values if mask is None else facts.values[mask]
    return float(values.sum())


def test_grand_total(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales)")
    assert len(rs) == 1
    assert rs.rows[0][0] == pytest.approx(direct_sum(facts))


def test_group_by_partitions_total(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) GROUP BY Product.L1")
    assert len(rs) == 2
    assert sum(row[1] for row in rs.rows) == pytest.approx(direct_sum(facts))


def test_group_by_two_dimensions(setup):
    schema, facts, session = setup
    rs = session.query(
        "SELECT SUM(UnitSales) GROUP BY Product.L2, Customer.L1"
    )
    # Rows are (product label, customer label, sum).
    assert all(len(row) == 3 for row in rs.rows)
    assert sum(row[2] for row in rs.rows) == pytest.approx(direct_sum(facts))


def test_where_filters_exactly(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) WHERE Product.L2 = 3")
    mask = facts.coords[0] == 3
    assert rs.rows[0][0] == pytest.approx(direct_sum(facts, mask))


def test_where_in(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) WHERE Product.L2 IN (0, 3)")
    mask = np.isin(facts.coords[0], [0, 3])
    assert rs.rows[0][0] == pytest.approx(direct_sum(facts, mask))


def test_where_at_coarser_level_than_group(setup):
    schema, facts, session = setup
    rs = session.query(
        "SELECT SUM(UnitSales) GROUP BY Product.L2 WHERE Product.L1 = 0"
    )
    # Only products whose L1 ancestor is 0 (ordinals 0..1 at L2).
    labels = [row[0] for row in rs.rows]
    assert all("0" in str(l) or "1" in str(l) for l in labels)
    mask = facts.coords[0] < 2
    assert sum(row[1] for row in rs.rows) == pytest.approx(
        direct_sum(facts, mask)
    )


def test_avg_and_count(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales), COUNT(UnitSales), AVG(UnitSales)")
    total, count, average = rs.rows[0]
    assert total == pytest.approx(direct_sum(facts))
    assert count == int(facts.counts.sum())
    assert average == pytest.approx(total / count)


def test_empty_result_ungrouped_yields_zero_row(setup):
    schema, facts, session = setup
    # A contradiction: Product.L1 = 0 AND Product.L1 = 1.
    rs = session.query(
        "SELECT SUM(UnitSales), COUNT(UnitSales) "
        "WHERE Product.L1 = 0 AND Product.L1 = 1"
    )
    assert rs.rows == [(0.0, 0)]


def test_empty_result_grouped_yields_no_rows(setup):
    schema, facts, session = setup
    rs = session.query(
        "SELECT SUM(UnitSales) GROUP BY Customer.L1 "
        "WHERE Product.L1 = 0 AND Product.L1 = 1"
    )
    assert rs.rows == []


def test_member_labels_in_rows(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) GROUP BY Product.L1")
    assert all(isinstance(row[0], str) for row in rs.rows)


def test_format_and_to_dicts(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) GROUP BY Product.L1")
    text = rs.format()
    assert "SUM(UnitSales)" in text
    assert "rows;" in text
    dicts = rs.to_dicts()
    assert len(dicts) == len(rs)
    assert "SUM(UnitSales)" in dicts[0]


def test_queries_answered_from_cache(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) GROUP BY Time.L1")
    # Large cache preloaded with the base table: everything is computable.
    assert rs.complete_hit


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    group_dim=st.sampled_from(["Product.L1", "Product.L2", "Customer.L1", "Time.L1"]),
    filter_value=st.integers(0, 1),
)
def test_property_matches_direct_aggregation(seed, group_dim, filter_value):
    """Property: GROUP BY + WHERE answers equal brute-force numpy."""
    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=120, seed=seed)
    backend = BackendDatabase(schema, facts)
    cache = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcm"
    )
    session = OlapSession(cache)
    rs = session.query(
        f"SELECT SUM(UnitSales) GROUP BY {group_dim} "
        f"WHERE Customer.L1 = {filter_value}"
    )
    mask = facts.coords[1] == filter_value
    dim_name, level_text = group_dim.split(".")
    dim_index = schema.dim_index(dim_name)
    level = int(level_text[1:])
    dim = schema.dimensions[dim_index]
    group_ordinals = dim.map_ordinals(
        dim.height, level, facts.coords[dim_index]
    )
    expected: dict[int, float] = {}
    for ordinal, value, keep in zip(group_ordinals, facts.values, mask):
        if keep:
            expected[int(ordinal)] = expected.get(int(ordinal), 0.0) + float(value)
    got = {int(row[0]): row[1] for row in rs.rows}
    assert got == pytest.approx(expected)


def test_to_chart(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales) GROUP BY Product.L1")
    chart = rs.to_chart()
    assert "SUM(UnitSales)" in chart
    for row in rs.rows:
        assert str(row[0]) in chart


def test_to_chart_ungrouped(setup):
    schema, facts, session = setup
    rs = session.query("SELECT SUM(UnitSales)")
    chart = rs.to_chart()
    assert "ALL" in chart


def test_to_chart_empty():
    from repro.olap.executor import ResultSet

    rs = ResultSet(columns=("x",), rows=[])
    assert rs.to_chart() == "(no rows)"
