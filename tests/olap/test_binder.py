"""Binder tests: name resolution and level arithmetic."""

from __future__ import annotations

import pytest

from repro.olap.binder import QueryBindError, bind
from repro.olap.parser import parse_query
from repro.schema import apb_small_schema
from repro.schema.members import MemberCatalog


@pytest.fixture(scope="module")
def schema():
    return apb_small_schema()


@pytest.fixture(scope="module")
def catalog(schema):
    return MemberCatalog.synthetic(schema)


def test_group_by_sets_output_level(schema):
    bound = bind(
        parse_query("SELECT SUM(UnitSales) GROUP BY Product.Division, Time.Year"),
        schema,
    )
    assert bound.output_level == (1, 0, 1, 0, 0)
    assert bound.compute_level == (1, 0, 1, 0, 0)
    assert bound.group_dims == ((0, 1), (2, 1))


def test_predicate_deepens_compute_level(schema):
    bound = bind(
        parse_query(
            "SELECT SUM(UnitSales) GROUP BY Time.Year WHERE Time.Month = 5"
        ),
        schema,
    )
    assert bound.output_level == (0, 0, 1, 0, 0)
    assert bound.compute_level == (0, 0, 3, 0, 0)


def test_level_reference_forms(schema):
    for text in ("Product.Division", "Product.L1", "Product.1", "product.division"):
        bound = bind(
            parse_query(f"SELECT SUM(UnitSales) GROUP BY {text}"), schema
        )
        assert bound.output_level[0] == 1


def test_measure_checked(schema):
    with pytest.raises(QueryBindError, match="measure"):
        bind(parse_query("SELECT SUM(Profit)"), schema)
    # Case-insensitive match on the real measure.
    bind(parse_query("SELECT SUM(unitsales)"), schema)


def test_unknown_dimension(schema):
    with pytest.raises(QueryBindError, match="unknown dimension"):
        bind(parse_query("SELECT SUM(UnitSales) GROUP BY Region.Country"), schema)


def test_unknown_level(schema):
    with pytest.raises(QueryBindError, match="no level named"):
        bind(parse_query("SELECT SUM(UnitSales) GROUP BY Product.Universe"), schema)


def test_level_out_of_range(schema):
    with pytest.raises(QueryBindError, match="levels 0..6"):
        bind(parse_query("SELECT SUM(UnitSales) GROUP BY Product.9"), schema)


def test_duplicate_group_dimension(schema):
    with pytest.raises(QueryBindError, match="twice"):
        bind(
            parse_query(
                "SELECT SUM(UnitSales) GROUP BY Product.Division, Product.Line"
            ),
            schema,
        )


def test_predicate_ordinal_validation(schema):
    with pytest.raises(QueryBindError, match="ordinals 0..1"):
        bind(parse_query("SELECT SUM(UnitSales) WHERE Product.Division = 7"), schema)


def test_between_bounds_checked(schema):
    with pytest.raises(QueryBindError, match="reversed"):
        bind(
            parse_query("SELECT SUM(UnitSales) WHERE Time.Month BETWEEN 9 AND 3"),
            schema,
        )


def test_between_expands_to_range(schema):
    bound = bind(
        parse_query("SELECT SUM(UnitSales) WHERE Time.Month BETWEEN 3 AND 6"),
        schema,
    )
    assert bound.predicates[0].ordinals == frozenset({3, 4, 5, 6})


def test_member_names_resolved(schema, catalog):
    bound = bind(
        parse_query("SELECT SUM(UnitSales) WHERE Product.Division = 'Division 1'"),
        schema,
        catalog,
    )
    assert bound.predicates[0].ordinals == frozenset({1})


def test_member_names_without_catalog_rejected(schema):
    with pytest.raises(QueryBindError, match="no member catalog"):
        bind(
            parse_query("SELECT SUM(UnitSales) WHERE Product.Division = 'X'"),
            schema,
        )


def test_unknown_member_name(schema, catalog):
    with pytest.raises(Exception, match="no member named"):
        bind(
            parse_query("SELECT SUM(UnitSales) WHERE Product.Division = 'Nope'"),
            schema,
            catalog,
        )
