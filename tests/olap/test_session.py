"""OlapSession surface tests."""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    MemberCatalog,
    OlapSession,
    generate_fact_table,
)
from repro.olap.nodes import SelectQuery
from repro.schema import apb_tiny_schema


@pytest.fixture(scope="module")
def session():
    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=200, seed=6)
    backend = BackendDatabase(schema, facts)
    cache = AggregateCache(schema, backend, capacity_bytes=1 << 20)
    return OlapSession(cache, MemberCatalog.synthetic(schema))


def test_parse_returns_ast(session):
    query = session.parse("SELECT SUM(UnitSales)")
    assert isinstance(query, SelectQuery)


def test_bind_accepts_text_or_ast(session):
    from_text = session.bind("SELECT SUM(UnitSales) GROUP BY Product.L1")
    from_ast = session.bind(
        session.parse("SELECT SUM(UnitSales) GROUP BY Product.L1")
    )
    assert from_text.output_level == from_ast.output_level


def test_query_accepts_ast(session):
    ast = session.parse("SELECT SUM(UnitSales)")
    rs = session.query(ast)
    assert len(rs) == 1


def test_sql_alias(session):
    assert session.sql("SELECT SUM(UnitSales)").rows == session.query(
        "SELECT SUM(UnitSales)"
    ).rows


def test_queries_run_counter(session):
    before = session.queries_run
    session.query("SELECT SUM(UnitSales)")
    session.query("SELECT COUNT(UnitSales)")
    assert session.queries_run == before + 2


def test_result_iteration_and_len(session):
    rs = session.query("SELECT SUM(UnitSales) GROUP BY Product.L2")
    assert len(list(iter(rs))) == len(rs)
