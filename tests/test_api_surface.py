"""Public API hygiene: exports, docstrings, and basic contracts."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_all_is_sorted_and_unique():
    assert sorted(repro.__all__) == list(repro.__all__)
    assert len(set(repro.__all__)) == len(repro.__all__)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


def test_version_matches_pyproject():
    import pathlib
    import re

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    if not pyproject.exists():
        pytest.skip("source layout not available")
    match = re.search(r'version = "([^"]+)"', pyproject.read_text())
    assert match
    assert repro.__version__ == match.group(1)


def test_strategy_and_policy_registries_consistent():
    from repro import STRATEGY_NAMES
    from repro.cache.replacement import POLICY_NAMES, make_policy

    assert set(STRATEGY_NAMES) == {"esm", "esmc", "vcm", "vcmc", "noagg"}
    for policy in POLICY_NAMES:
        assert make_policy(policy).name == policy
