"""Single-flight table semantics: one leader per key, shared results,
error propagation, and the publish/release lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.service import SingleFlightTable
from repro.util.errors import ReproError


def test_claim_partitions_leaders_and_followers():
    table = SingleFlightTable()
    led, joined = table.claim(["a", "b"])
    assert led == ["a", "b"]
    assert joined == {}
    led2, joined2 = table.claim(["b", "c"])
    assert led2 == ["c"]
    assert set(joined2) == {"b"}
    assert table.led == 3
    assert table.joined == 1
    assert table.in_progress() == 3


def test_concurrent_do_runs_fn_once_and_shares_result():
    table = SingleFlightTable()
    calls = []
    calls_lock = threading.Lock()
    gate = threading.Event()
    barrier = threading.Barrier(5)
    results = []
    results_lock = threading.Lock()

    def fetch():
        with calls_lock:
            calls.append(threading.get_ident())
        gate.wait(timeout=5)  # hold the flight open until all have claimed
        return object()

    def worker():
        barrier.wait(timeout=5)
        value = table.do("key", fetch, timeout=5)
        with results_lock:
            results.append(value)

    threads = [threading.Thread(target=worker) for _ in range(5)]
    for t in threads:
        t.start()
    # Wait until everyone either leads (one) or joined the flight.
    for _ in range(500):
        if table.joined >= 4:
            break
        threading.Event().wait(0.01)
    gate.set()
    for t in threads:
        t.join(timeout=5)
    assert len(calls) == 1, "backend fetch must run exactly once"
    assert len(results) == 5
    assert all(r is results[0] for r in results), "all callers share one object"


def test_leader_failure_propagates_to_followers():
    table = SingleFlightTable()
    led, _ = table.claim(["k"])
    assert led == ["k"]
    _, joined = table.claim(["k"])
    flight = joined["k"]

    failure = RuntimeError("backend down")
    table.fail(["k"], failure)
    with pytest.raises(RuntimeError, match="backend down"):
        table.wait(flight, timeout=1)
    # The failed flight is retired: the next claim starts fresh.
    led2, joined2 = table.claim(["k"])
    assert led2 == ["k"] and not joined2


def test_published_flight_is_joinable_until_released():
    table = SingleFlightTable()
    table.claim(["k"])
    table.publish("k", "chunk")
    # A late misser lands between publish and release: it joins and gets
    # the result immediately instead of refetching.
    led, joined = table.claim(["k"])
    assert not led
    assert table.wait(joined["k"], timeout=1) == "chunk"
    table.release(["k"])
    led2, _ = table.claim(["k"])
    assert led2 == ["k"]


def test_wait_timeout_raises():
    table = SingleFlightTable()
    table.claim(["k"])
    _, joined = table.claim(["k"])
    with pytest.raises(ReproError, match="timed out"):
        table.wait(joined["k"], timeout=0.05)


def test_abandon_fails_unpublished_and_retires_published():
    table = SingleFlightTable()
    table.claim(["a", "b"])
    table.publish("a", "chunk-a")
    _, joined = table.claim(["a", "b"])
    assert set(joined) == {"a", "b"}

    table.abandon(["a", "b"], RuntimeError("leader died"))
    assert table.in_progress() == 0
    # The published flight keeps its result for waiters already holding
    # it, but is gone from the table — no future claimant can share a
    # chunk that was never admitted.
    assert table.wait(joined["a"], timeout=1) == "chunk-a"
    with pytest.raises(RuntimeError, match="leader died"):
        table.wait(joined["b"], timeout=1)
    led, joined_after = table.claim(["a", "b"])
    assert led == ["a", "b"] and not joined_after


def test_abandon_wakes_blocked_waiters():
    table = SingleFlightTable()
    table.claim(["k"])
    _, joined = table.claim(["k"])
    errors = []

    def waiter():
        try:
            table.wait(joined["k"], timeout=5)
        except RuntimeError as exc:
            errors.append(exc)

    thread = threading.Thread(target=waiter)
    thread.start()
    table.abandon(["k"], RuntimeError("abandoned"))
    thread.join(timeout=5)
    assert len(errors) == 1


def test_abandon_of_unknown_keys_is_a_noop():
    table = SingleFlightTable()
    table.abandon(["ghost"], RuntimeError("x"))
    assert table.in_progress() == 0
