"""ReadWriteLock semantics: shared reads, exclusive writes, writer
preference, and misuse guards."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import ReadWriteLock


def test_multiple_concurrent_readers():
    lock = ReadWriteLock()
    n = 4
    barrier = threading.Barrier(n)
    peak = []

    def reader():
        with lock.read_locked():
            barrier.wait(timeout=5)  # all n inside the read lock at once
            peak.append(lock.readers)

    threads = [threading.Thread(target=reader) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert max(peak) == n
    assert lock.readers == 0


def test_writer_excludes_readers_and_writers():
    lock = ReadWriteLock()
    order = []
    writer_in = threading.Event()

    def writer():
        with lock.write_locked():
            writer_in.set()
            time.sleep(0.05)
            order.append("writer")

    def reader():
        writer_in.wait(timeout=5)
        with lock.read_locked():
            order.append("reader")

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start()
    r.start()
    w.join(timeout=5)
    r.join(timeout=5)
    assert order == ["writer", "reader"]


def test_writer_preference_blocks_new_readers():
    lock = ReadWriteLock()
    order = []
    writer_waiting = threading.Event()
    first_reader_in = threading.Event()
    release_first_reader = threading.Event()

    def first_reader():
        with lock.read_locked():
            first_reader_in.set()
            release_first_reader.wait(timeout=5)
        order.append("reader1-released")

    def writer():
        first_reader_in.wait(timeout=5)
        writer_waiting.set()
        with lock.write_locked():
            order.append("writer")

    def late_reader():
        writer_waiting.wait(timeout=5)
        time.sleep(0.02)  # let the writer actually block on the lock
        with lock.read_locked():
            order.append("reader2")

    threads = [
        threading.Thread(target=first_reader),
        threading.Thread(target=writer),
        threading.Thread(target=late_reader),
    ]
    for t in threads:
        t.start()
    first_reader_in.wait(timeout=5)
    writer_waiting.wait(timeout=5)
    time.sleep(0.05)
    # The late reader must be queued behind the waiting writer.
    assert "reader2" not in order
    release_first_reader.set()
    for t in threads:
        t.join(timeout=5)
    assert order.index("writer") < order.index("reader2")


def test_unmatched_releases_raise():
    lock = ReadWriteLock()
    with pytest.raises(RuntimeError):
        lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_write()


def test_write_lock_released_on_exception():
    lock = ReadWriteLock()
    with pytest.raises(ValueError):
        with lock.write_locked():
            raise ValueError("boom")
    assert not lock.writer_active
    with lock.read_locked():
        assert lock.readers == 1
