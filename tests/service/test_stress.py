"""Concurrency stress: many workers, many queries, tight cache, then the
two consistency invariants the locking design promises.

* byte accounting: ``used_bytes`` equals the sum of resident entry sizes;
* count maintenance: every CountStore array equals one rebuilt from
  scratch off the final resident set (Property 1 survived the races).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    CountStore,
    QueryStreamGenerator,
)
from repro.obs import Observability

WORKERS = 8
NUM_QUERIES = 240


@pytest.mark.parametrize(
    "capacity_fraction",
    [0.35, 1.0],
    ids=["tight-cache-heavy-eviction", "roomy-cache"],
)
def test_stress_invariants(tiny_schema, tiny_facts, capacity_fraction):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    obs = Observability.in_memory(capacity=100_000)
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=max(
            int(backend.base_size_bytes * capacity_fraction), 1
        ),
        strategy="vcmc",
        policy="two_level",
        obs=obs,
    )
    service = ConcurrentAggregateCache(manager)
    stream = list(
        QueryStreamGenerator(tiny_schema, max_extent=3, seed=3271).generate(
            NUM_QUERIES
        )
    )

    results = service.serve(stream, workers=WORKERS)

    assert len(results) == NUM_QUERIES
    assert all(r is not None for r in results)
    for query, result in zip(stream, results):
        assert result.query is query, "results must come back in order"
        assert len(result.chunks) == query.num_chunks
    assert manager.queries_run == NUM_QUERIES
    assert manager.complete_hits == sum(1 for r in results if r.complete_hit)
    assert service.flights.in_progress() == 0

    # Invariant 1: exact byte accounting.
    cache = manager.cache
    assert cache.used_bytes == sum(
        entry.size_bytes for entry in cache.entries()
    )
    assert 0 <= cache.used_bytes <= cache.capacity_bytes

    # Invariant 2: maintained virtual counts equal a from-scratch rebuild
    # off the final resident set.
    rebuilt = CountStore(tiny_schema)
    for level, number in cache.resident_keys():
        rebuilt.on_insert(level, number)
    for level in tiny_schema.all_levels():
        assert np.array_equal(
            manager.strategy.counts.counts_array(level),
            rebuilt.counts_array(level),
        ), f"count store diverged at level {level}"

    # The metrics counters were incremented under their locks: the query
    # counter must equal the number of queries exactly, not approximately.
    snapshot = obs.snapshot()
    assert snapshot["counters"]["query.count"] == NUM_QUERIES
    assert (
        snapshot["counters"].get("query.complete_hits", 0)
        == manager.complete_hits
    )
