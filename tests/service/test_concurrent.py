"""ConcurrentAggregateCache behaviour: sequential equivalence,
single-flight backend deduplication, and plan-vs-eviction revalidation."""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    Query,
    QueryStreamGenerator,
)


def make_manager(tiny_schema, tiny_facts, capacity_fraction=0.6, **kwargs):
    """A fresh manager on a fresh backend (isolated request accounting)."""
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    capacity = max(int(backend.base_size_bytes * capacity_fraction), 1)
    kwargs.setdefault("strategy", "vcmc")
    kwargs.setdefault("policy", "two_level")
    return AggregateCache(tiny_schema, backend, capacity, **kwargs)


def stream_for(tiny_schema, n=80, seed=901):
    generator = QueryStreamGenerator(tiny_schema, max_extent=3, seed=seed)
    return list(generator.generate(n))


COMPARED_FIELDS = (
    "complete_hit",
    "direct_hits",
    "aggregated",
    "from_backend",
    "tuples_aggregated",
    "lookup_visits",
    "state_updates",
    "reinforcements_skipped",
)


def test_serve_with_one_worker_matches_sequential_manager(
    tiny_schema, tiny_facts
):
    stream = stream_for(tiny_schema)
    sequential = make_manager(tiny_schema, tiny_facts, keep_log=True)
    expected = [sequential.query(q) for q in stream]

    service = ConcurrentAggregateCache(
        make_manager(tiny_schema, tiny_facts, keep_log=True)
    )
    actual = service.serve(stream, workers=1)

    assert len(actual) == len(expected)
    for index, (a, b) in enumerate(zip(expected, actual)):
        for field in COMPARED_FIELDS:
            assert getattr(a, field) == getattr(b, field), (index, field)
        assert a.total_value() == pytest.approx(b.total_value())
        assert [c.key for c in a.chunks] == [c.key for c in b.chunks]
    # Manager-level accounting is identical too.
    assert service.queries_run == sequential.queries_run
    assert service.complete_hits == sequential.complete_hits
    assert (
        service.manager.optimizer_redirects == sequential.optimizer_redirects
    )
    assert service.cache.used_bytes == sequential.cache.used_bytes
    assert sorted(service.cache.resident_keys()) == sorted(
        sequential.cache.resident_keys()
    )
    assert len(service.manager.query_log) == len(sequential.query_log)
    for a_rec, b_rec in zip(sequential.query_log, service.manager.query_log):
        assert a_rec.sequence == b_rec.sequence
        assert a_rec.complete_hit == b_rec.complete_hit
        assert a_rec.from_backend == b_rec.from_backend
        assert a_rec.cache_used_bytes == b_rec.cache_used_bytes
    # Nothing should have needed the concurrency machinery.
    assert service.replans == 0
    assert service.flights.joined == 0
    assert service.flights.in_progress() == 0


def test_concurrent_misses_share_one_backend_fetch(tiny_schema, tiny_facts):
    # Capacity above the base size so every fetched chunk stays resident
    # (the follow-up query then proves the admissions landed).
    manager = make_manager(
        tiny_schema, tiny_facts, capacity_fraction=2.0, preload=False
    )
    service = ConcurrentAggregateCache(manager)
    backend = manager.backend

    # Gate the (single) leader's fetch open until every claimant has
    # either led or joined, so the dedup window is deterministic.
    original_fetch = backend.fetch
    fetch_calls = []
    calls_lock = threading.Lock()
    gate = threading.Event()

    def gated_fetch(requests):
        with calls_lock:
            fetch_calls.append(list(requests))
        assert gate.wait(timeout=10)
        return original_fetch(requests)

    backend.fetch = gated_fetch
    try:
        query = Query.full_level(tiny_schema, tiny_schema.base_level)
        workers = 4
        barrier = threading.Barrier(workers)
        results = [None] * workers

        def worker(slot):
            barrier.wait(timeout=10)
            results[slot] = service.query(query)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(workers)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if service.flights.joined >= (workers - 1) * query.num_chunks:
                break
            time.sleep(0.005)
        gate.set()
        for t in threads:
            t.join(timeout=10)
    finally:
        del backend.fetch  # restore the class method

    assert len(fetch_calls) == 1, (
        "concurrent misses on the same chunks must issue one backend fetch"
    )
    assert backend.totals.requests == 1
    assert all(r is not None for r in results)
    reference = results[0].total_value()
    for result in results:
        assert result.from_backend == query.num_chunks
        assert result.total_value() == pytest.approx(reference)
    assert service.flights.joined == (len(results) - 1) * query.num_chunks
    assert service.flights.in_progress() == 0
    # The fetched chunks were admitted once and are now served from cache.
    followup = service.query(query)
    assert followup.complete_hit
    assert backend.totals.requests == 1


def test_plan_invalidated_by_racing_eviction_replans(
    tiny_schema, tiny_facts
):
    """Satellite: a plan leaf evicted between find and materialise must
    trigger a re-plan (or backend fallback), never a ReproError."""
    manager = make_manager(tiny_schema, tiny_facts, capacity_fraction=1.2)
    service = ConcurrentAggregateCache(manager)

    target = None
    for level in tiny_schema.all_levels():
        plan = manager.strategy.find(level, 0)
        if plan is not None and not plan.is_leaf:
            target = level
            break
    assert target is not None, "need a level answered by aggregation"

    original_find = service._find
    sabotaged = []

    def racing_find(level, number):
        plan, visits = original_find(level, number)
        if plan is not None and not plan.is_leaf and not sabotaged:
            # Simulate a concurrent writer: evict one plan leaf after the
            # plan was returned but before it is materialised.
            leaf = next(iter(plan.leaves()))
            manager.cache.evict(leaf.level, leaf.number)
            manager.strategy.on_evict(leaf.level, leaf.number)
            sabotaged.append(leaf)
        return plan, visits

    service._find = racing_find
    result = service.query(Query.full_level(tiny_schema, target))
    service._find = original_find

    assert sabotaged, "the race was never staged"
    assert service.replans >= 1
    reference = make_manager(tiny_schema, tiny_facts, capacity_fraction=1.2)
    expected = reference.query(Query.full_level(tiny_schema, target))
    assert result.total_value() == pytest.approx(expected.total_value())
