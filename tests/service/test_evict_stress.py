"""Eviction-path stress: warehouse invalidations racing live queries.

``invalidate_base_chunks`` evicts whole waves while worker threads
admit, reinforce and evict through the query path.  The service layer
serialises every movement (invalidations under the write lock, admission
waves under the store lock followed by one strategy wave), so no
interleaving may leave the Count/Cost stores describing chunks that are
not resident — the invariant checked here by rebuilding both stores from
the final resident set alone.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    CountStore,
    QueryStreamGenerator,
)
from repro.core.costs import CostStore

WORKERS = 6
NUM_QUERIES = 160


@pytest.mark.parametrize(
    "capacity_fraction",
    [0.35, 1.0],
    ids=["tight-cache", "roomy-cache"],
)
def test_invalidation_racing_queries_keeps_state_consistent(
    tiny_schema, tiny_facts, capacity_fraction
):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=max(
            int(backend.base_size_bytes * capacity_fraction), 1
        ),
        strategy="vcmc",
        policy="two_level",
    )
    service = ConcurrentAggregateCache(manager)
    stream = list(
        QueryStreamGenerator(tiny_schema, max_extent=3, seed=9041).generate(
            NUM_QUERIES
        )
    )

    num_base = tiny_schema.num_chunks(tiny_schema.base_level)
    stop = threading.Event()
    invalidations = []

    def invalidator():
        rng = np.random.default_rng(9041)
        while not stop.is_set():
            targets = rng.choice(
                num_base, size=max(1, num_base // 4), replace=False
            )
            invalidations.append(
                service.invalidate_base_chunks([int(n) for n in targets])
            )

    thread = threading.Thread(target=invalidator)
    thread.start()
    try:
        results = service.serve(stream, workers=WORKERS)
    finally:
        stop.set()
        thread.join()

    assert len(results) == NUM_QUERIES
    assert all(r is not None for r in results)
    assert invalidations and any(n > 0 for n in invalidations), (
        "the invalidator must actually have evicted waves mid-run for "
        "this stress to mean anything"
    )

    # Byte accounting survived the interleaved eviction waves.
    cache = manager.cache
    assert cache.used_bytes == sum(
        entry.size_bytes for entry in cache.entries()
    )

    resident = list(cache.resident_keys())

    # Counts: maintained state equals a rebuild from the resident set.
    rebuilt_counts = CountStore(tiny_schema)
    rebuilt_counts.on_insert_many(resident)
    for level in tiny_schema.all_levels():
        assert np.array_equal(
            manager.strategy.counts.counts_array(level),
            rebuilt_counts.counts_array(level),
        ), f"count store diverged at level {level}"

    # Costs: computability/cached flags exact, cost surface equal up to
    # the store's sub-noise write cutoff (changes below _TOL are not
    # written back, so maintained values may carry <=nanotuple drift).
    costs = manager.strategy.costs
    rebuilt_costs = CostStore(tiny_schema, costs.sizes)
    rebuilt_costs.on_insert_many(resident)
    for level in tiny_schema.all_levels():
        maintained = costs._cost[level]
        recomputed = rebuilt_costs._cost[level]
        assert np.array_equal(
            np.isfinite(maintained), np.isfinite(recomputed)
        ), f"computability diverged at level {level}"
        assert np.array_equal(
            costs._cached[level], rebuilt_costs._cached[level]
        ), f"cached flags diverged at level {level}"
        finite = np.isfinite(maintained)
        assert np.allclose(
            maintained[finite], recomputed[finite], rtol=0.0, atol=1e-6
        ), f"cost surface diverged at level {level}"

    # Every cached flag corresponds to a resident chunk and vice versa.
    flagged = {
        (level, int(n))
        for level in tiny_schema.all_levels()
        for n in np.flatnonzero(costs._cached[level])
    }
    assert flagged == set(resident)
