"""Top-level CLI tests."""

from __future__ import annotations

import pytest

from repro.__main__ import build_demo_session, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Product" in out
    assert "336" in out
    assert "720,720" in out


def test_query_command(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.__main__.build_demo_session",
        lambda num_tuples=60_000: build_demo_session(num_tuples=2_000),
    )
    assert main(["query", "SELECT SUM(UnitSales) GROUP BY Time.Year"]) == 0
    out = capsys.readouterr().out
    assert "Year 0" in out and "SUM(UnitSales)" in out


def test_query_command_reports_errors(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.__main__.build_demo_session",
        lambda num_tuples=60_000: build_demo_session(num_tuples=2_000),
    )
    assert main(["query", "SELECT SUM(Nope)"]) == 1
    err = capsys.readouterr().err
    assert "unknown measure" in err


def test_demo_command(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.__main__.build_demo_session",
        lambda num_tuples=60_000: build_demo_session(num_tuples=2_000),
    )
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "complete hits" in out
    assert "LIMIT 3" in out


def test_shell_command(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.__main__.build_demo_session",
        lambda num_tuples=60_000: build_demo_session(num_tuples=2_000),
    )
    lines = iter(
        [
            "",
            "stats",
            "SELECT SUM(UnitSales)",
            "SELECT BROKEN",
            "exit",
        ]
    )
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    assert main(["shell"]) == 0
    out = capsys.readouterr().out
    assert "AggregateCache(" in out
    assert "SUM(UnitSales)" in out
    assert "error:" in out


def test_shell_eof_exits(capsys, monkeypatch):
    monkeypatch.setattr(
        "repro.__main__.build_demo_session",
        lambda num_tuples=60_000: build_demo_session(num_tuples=2_000),
    )

    def raise_eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", raise_eof)
    assert main(["shell"]) == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
