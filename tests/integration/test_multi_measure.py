"""Multi-measure cubes end to end (APB-1 carries several measures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    OlapSession,
    Query,
    generate_fact_table,
)
from repro.schema import CubeSchema, Dimension
from repro.util.errors import SchemaError


@pytest.fixture(scope="module")
def schema():
    return CubeSchema(
        [
            Dimension.uniform("Product", [1, 2, 4], [1, 2, 4]),
            Dimension.uniform("Customer", [1, 2], [1, 2]),
            Dimension.uniform("Time", [1, 2], [1, 1]),
        ],
        measure=["UnitSales", "DollarSales", "Cost"],
        bytes_per_tuple=28,
    )


@pytest.fixture(scope="module")
def facts(schema):
    return generate_fact_table(schema, num_tuples=400, seed=77)


@pytest.fixture(scope="module")
def manager(schema, facts):
    backend = BackendDatabase(schema, facts)
    return AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )


def test_schema_measure_accessors(schema):
    assert schema.measures == ("UnitSales", "DollarSales", "Cost")
    assert schema.measure == "UnitSales"
    assert schema.measure_index("dollarsales") == 1
    assert schema.num_extra_measures == 2
    with pytest.raises(SchemaError, match="no measure"):
        schema.measure_index("Profit")


def test_duplicate_measures_rejected():
    with pytest.raises(SchemaError, match="duplicate measure"):
        CubeSchema(
            [Dimension.flat("A", 4, 2)], measure=["x", "X"]
        )


def test_generator_produces_extras(schema, facts):
    assert len(facts.extras) == 2
    for extra in facts.extras:
        assert len(extra) == facts.num_tuples
        assert np.all(extra > 0)


def test_extras_rollup_to_apex(schema, facts, manager):
    result = manager.query(Query.full_level(schema, schema.apex_level))
    chunk = result.chunks[0]
    assert len(chunk.extras) == 2
    assert chunk.measure_values(1).sum() == pytest.approx(
        facts.extras[0].sum()
    )
    assert chunk.measure_values(2).sum() == pytest.approx(
        facts.extras[1].sum()
    )


def test_extras_correct_at_every_level(schema, facts, manager):
    for level in [(1, 1, 0), (2, 0, 1), (0, 0, 0)]:
        result = manager.query(Query.full_level(schema, level))
        total = sum(
            float(c.measure_values(1).sum()) for c in result.chunks
        )
        assert total == pytest.approx(facts.extras[0].sum())


def test_measure_values_bounds(schema, manager):
    result = manager.query(Query.full_level(schema, schema.apex_level))
    chunk = result.chunks[0]
    with pytest.raises(Exception, match="measures"):
        chunk.measure_values(3)


def test_olap_selects_each_measure(schema, facts, manager):
    session = OlapSession(manager)
    rs = session.query(
        "SELECT SUM(UnitSales), SUM(DollarSales), AVG(Cost)"
    )
    units, dollars, avg_cost = rs.rows[0]
    assert units == pytest.approx(float(facts.values.sum()))
    assert dollars == pytest.approx(float(facts.extras[0].sum()))
    assert avg_cost == pytest.approx(
        float(facts.extras[1].sum()) / int(facts.counts.sum())
    )


def test_olap_group_by_with_second_measure(schema, facts, manager):
    session = OlapSession(manager)
    rs = session.query("SELECT SUM(DollarSales) GROUP BY Product.L1")
    assert sum(row[1] for row in rs.rows) == pytest.approx(
        float(facts.extras[0].sum())
    )


def test_persistence_roundtrip_with_extras(schema, facts, tmp_path):
    from repro.backend.storage import load_fact_table, save_fact_table

    path = save_fact_table(facts, tmp_path / "mm.npz")
    loaded = load_fact_table(schema, path)
    assert len(loaded.extras) == 2
    assert loaded.extras[0].sum() == pytest.approx(facts.extras[0].sum())


def test_snapshot_roundtrip_with_extras(schema, facts, manager, tmp_path):
    from repro.cache.snapshot import load_cache_snapshot, save_cache_snapshot

    backend = BackendDatabase(schema, facts)
    path = tmp_path / "cache.npz"
    save_cache_snapshot(manager, path)
    fresh = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, preload=False
    )
    load_cache_snapshot(fresh, path)
    result = fresh.query(Query.full_level(schema, schema.apex_level))
    assert result.complete_hit
    assert result.chunks[0].measure_values(1).sum() == pytest.approx(
        facts.extras[0].sum()
    )
