"""Failure injection: a failing backend must not corrupt cache state.

The manager aggregates before fetching and admits after fetching, so an
exception from the backend aborts the query with the cache and the
strategy's count/cost state exactly as they were.
"""

from __future__ import annotations

import pytest

from repro import AggregateCache, Query
from repro.util.errors import ReproError
from tests.helpers import oracle_computable


class FlakyBackend:
    """Wraps a backend; raises on the first ``fail_times`` fetches."""

    def __init__(self, inner, fail_times: int = 1) -> None:
        self._inner = inner
        self.fail_times = fail_times
        self.calls = 0

    def fetch(self, requests):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise ReproError("injected backend outage")
        return self._inner.fetch(requests)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture
def flaky_manager(tiny_schema, tiny_backend):
    flaky = FlakyBackend(tiny_backend, fail_times=1)
    return (
        AggregateCache(
            tiny_schema,
            flaky,
            capacity_bytes=500,  # small: queries will miss
            strategy="vcm",
            preload=False,
        ),
        flaky,
    )


def snapshot_state(manager, schema):
    cached = set(manager.cache.resident_keys())
    counts = {
        level: manager.strategy.counts.counts_array(level).copy()
        for level in schema.all_levels()
    }
    return cached, counts, manager.cache.used_bytes


def test_backend_failure_leaves_state_untouched(flaky_manager, tiny_schema):
    manager, flaky = flaky_manager
    before = snapshot_state(manager, tiny_schema)
    with pytest.raises(ReproError, match="outage"):
        manager.query(Query.full_level(tiny_schema, (1, 1, 1)))
    after = snapshot_state(manager, tiny_schema)
    assert after[0] == before[0]
    assert after[2] == before[2]
    for level in tiny_schema.all_levels():
        assert (after[1][level] == before[1][level]).all()


def test_retry_after_outage_succeeds(flaky_manager, tiny_schema, tiny_facts):
    manager, flaky = flaky_manager
    query = Query.full_level(tiny_schema, (0, 0, 0))
    with pytest.raises(ReproError):
        manager.query(query)
    result = manager.query(query)  # outage over
    assert result.total_value() == pytest.approx(tiny_facts.total())


def test_counts_remain_oracle_consistent_after_failures(
    flaky_manager, tiny_schema
):
    manager, flaky = flaky_manager
    flaky.fail_times = 3
    for level in [(1, 1, 1), (0, 0, 0), (2, 1, 1)]:
        try:
            manager.query(Query.full_level(tiny_schema, level))
        except ReproError:
            pass
    cached = set(manager.cache.resident_keys())
    for level in tiny_schema.all_levels():
        for number in range(tiny_schema.num_chunks(level)):
            expected = oracle_computable(tiny_schema, cached, level, number)
            assert manager.strategy.counts.is_computable(level, number) == (
                expected
            )
