"""Story-level integration tests: the paper's headline claims, asserted
on a small (seconds-scale) instance of the real APB-shaped schema."""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    Query,
    QueryStreamGenerator,
    apb_small_schema,
    generate_fact_table,
)
from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.core.sizes import SizeEstimator
from repro.core.strategies import make_strategy
from repro.util.timers import Stopwatch


@pytest.fixture(scope="module")
def setup():
    schema = apb_small_schema()
    facts = generate_fact_table(schema, num_tuples=15_000, seed=99)
    backend = BackendDatabase(schema, facts)
    return schema, facts, backend


def test_claim_vcm_lookup_beats_esm_on_empty_cache(setup):
    """Table 1's core claim, as wall time on the real lattice."""
    schema, facts, _ = setup
    cache = ChunkCache(1 << 20, make_policy("benefit"), 20)
    sizes = SizeEstimator(schema, facts.num_tuples)
    esm = make_strategy("esm", schema, cache, sizes)
    vcm = make_strategy("vcm", schema, cache, sizes)
    apex = schema.apex_level

    watch = Stopwatch()
    vcm.find(apex, 0)
    vcm_ms = watch.elapsed_ms()
    watch.restart()
    esm.find(apex, 0)
    esm_ms = watch.elapsed_ms()
    # 720,720 paths vs one count read: orders of magnitude apart.
    assert esm_ms > 50 * max(vcm_ms, 0.001)
    assert vcm.last_find_visits == 1
    assert esm.last_find_visits > 100_000


def test_claim_active_cache_answers_rollups_without_backend(setup):
    schema, facts, backend = setup
    manager = AggregateCache(
        schema, backend, capacity_bytes=facts.size_bytes * 2, strategy="vcmc"
    )
    # Drill down (hits preloaded base), then roll up repeatedly: no
    # backend traffic at all.
    requests_before = backend.totals.requests
    for level in [(6, 2, 3, 1, 1), (5, 2, 3, 1, 1), (3, 1, 2, 0, 0), (0, 0, 0, 0, 0)]:
        result = manager.query(Query.single_chunk(schema, level, 0))
        assert result.complete_hit, level
    assert backend.totals.requests == requests_before


def test_claim_conventional_cache_misses_rollups(setup):
    schema, facts, backend = setup
    manager = AggregateCache(
        schema,
        backend,
        capacity_bytes=facts.size_bytes * 2,
        strategy="noagg",
        policy="benefit",
        preload=False,
    )
    first = manager.query(Query.single_chunk(schema, (6, 2, 3, 1, 1), 0))
    rollup = manager.query(Query.single_chunk(schema, (5, 2, 3, 1, 1), 0))
    assert not first.complete_hit
    assert not rollup.complete_hit  # the conventional cache cannot roll up


def test_claim_two_level_reaches_full_hits_when_base_fits(setup):
    schema, facts, backend = setup
    manager = AggregateCache(
        schema,
        backend,
        capacity_bytes=int(facts.size_bytes * 1.3),
        strategy="vcmc",
        policy="two_level",
        preload_headroom=0.9,
    )
    assert manager.preloaded_level == schema.base_level
    generator = QueryStreamGenerator(schema, seed=5)
    for query in generator.generate(30):
        assert manager.query(query).complete_hit
    assert manager.complete_hit_ratio == 1.0


def test_claim_answers_identical_across_all_strategies(setup):
    schema, facts, backend = setup
    query = Query.full_level(schema, (1, 1, 1, 0, 0))
    totals = set()
    for strategy in ("noagg", "esm", "vcm", "vcmc"):
        manager = AggregateCache(
            schema,
            backend,
            capacity_bytes=facts.size_bytes,
            strategy=strategy,
        )
        totals.add(round(manager.query(query).total_value(), 6))
    assert len(totals) == 1
