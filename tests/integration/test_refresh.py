"""Warehouse refresh tests: append facts, invalidate, stay correct.

The cardinal sin would be serving a stale aggregate after new facts
arrive; these tests hammer exactly that path.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    Query,
    generate_fact_table,
)
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from tests.helpers import direct_aggregate, oracle_computable


def merged_truth(schema, parts, level):
    cells: dict = {}
    for facts in parts:
        for cell, value in direct_aggregate(facts, level).items():
            cells[cell] = cells.get(cell, 0.0) + value
    return cells


@pytest.fixture
def world():
    schema = apb_tiny_schema()
    initial = generate_fact_table(schema, num_tuples=200, seed=1)
    delta = generate_fact_table(schema, num_tuples=150, seed=2)
    backend = BackendDatabase(schema, initial)
    return schema, initial, delta, backend


def test_append_merges_duplicate_cells(world):
    schema, initial, delta, backend = world
    before = backend.num_tuples
    affected = backend.append(delta)
    assert affected  # the tiny cube overlaps almost surely
    # Distinct cells after merge: union of both tables' cells.
    union = merged_truth(schema, [initial, delta], schema.base_level)
    assert backend.num_tuples == len(union)
    assert backend.num_tuples >= before
    apex = backend.compute_chunk(schema.apex_level, 0)
    assert apex.total() == pytest.approx(initial.total() + delta.total())


def test_append_schema_mismatch_rejected(world):
    schema, initial, delta, backend = world
    from repro.schema import CubeSchema, Dimension

    other_schema = CubeSchema(
        [Dimension.flat("A", 4, 2), Dimension.flat("B", 2, 1)],
        measure="Units",
    )
    other = generate_fact_table(other_schema, num_tuples=10, seed=3)
    with pytest.raises(ReproError, match="different schema"):
        backend.append(other)


def test_append_accepts_equal_schema_different_instance(world):
    """Regression: schemas were compared by object identity, so a batch
    generated against a separately constructed (but identical) schema —
    the normal shape after a fact-file round trip — was rejected.
    Equality is now judged by fingerprint."""
    schema, initial, delta, backend = world
    same_cube = generate_fact_table(apb_tiny_schema(), num_tuples=10, seed=3)
    assert same_cube.schema is not schema
    affected = backend.append(same_cube)
    assert affected


def test_append_accepts_fact_file_round_trip(world, tmp_path):
    """A batch saved to disk and loaded against a fresh schema instance
    appends cleanly (the identity-comparison bug's real-world shape)."""
    from repro.backend.storage import load_fact_table, save_fact_table

    schema, initial, delta, backend = world
    path = tmp_path / "delta.npz"
    save_fact_table(delta, path)
    reloaded = load_fact_table(apb_tiny_schema(), path)
    assert reloaded.schema is not schema
    before = backend.num_tuples
    backend.append(reloaded)
    union = merged_truth(schema, [initial, delta], schema.base_level)
    assert backend.num_tuples == len(union) >= before


def test_stale_aggregates_never_served(world):
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    query = Query.full_level(schema, (1, 1, 0))
    stale = manager.query(query)
    assert stale.total_value() == pytest.approx(initial.total())

    outcome = manager.refresh_from_backend(delta)
    assert outcome.mode == "delta"
    assert outcome.patched > 0
    fresh = manager.query(query)
    assert fresh.total_value() == pytest.approx(
        initial.total() + delta.total()
    )


def test_stale_aggregates_never_served_evict_mode(world):
    """The legacy mode still works: overlapping residents are evicted and
    the next query refetches fresh data."""
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    query = Query.full_level(schema, (1, 1, 0))
    manager.query(query)
    outcome = manager.refresh_from_backend(delta, mode="evict")
    assert outcome.evicted > 0
    assert outcome.patched == 0
    fresh = manager.query(query)
    assert fresh.total_value() == pytest.approx(
        initial.total() + delta.total()
    )


def test_unknown_refresh_mode_rejected(world):
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    with pytest.raises(ReproError, match="unknown refresh mode"):
        manager.refresh_from_backend(delta, mode="nonsense")


def test_unaffected_chunks_survive_refresh():
    schema = apb_tiny_schema()
    initial = generate_fact_table(schema, num_tuples=200, seed=1)
    backend = BackendDatabase(schema, initial)
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcm"
    )
    manager.query(Query.full_level(schema, schema.base_level))
    # A delta touching exactly one base cell.
    delta = generate_fact_table(schema, num_tuples=1, seed=7)
    resident_before = set(manager.cache.resident_keys())
    outcome = manager.refresh_from_backend(delta, mode="evict")
    affected = outcome.affected
    assert len(affected) == 1
    survivors = set(manager.cache.resident_keys())
    # Base chunks not covering the updated cell must still be cached.
    untouched_base = {
        (schema.base_level, n)
        for n in range(schema.num_chunks(schema.base_level))
        if n not in affected
    }
    assert untouched_base <= survivors
    assert survivors < resident_before or outcome.evicted == 0


def test_delta_refresh_preserves_all_residents():
    """The tentpole: in delta mode the whole resident set survives the
    append — overlapping chunks are patched in place, not evicted."""
    schema = apb_tiny_schema()
    initial = generate_fact_table(schema, num_tuples=200, seed=1)
    backend = BackendDatabase(schema, initial)
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    manager.query(Query.full_level(schema, schema.base_level))
    manager.query(Query.full_level(schema, (1, 1, 0)))
    delta = generate_fact_table(schema, num_tuples=40, seed=7)
    resident_before = set(manager.cache.resident_keys())
    outcome = manager.refresh_from_backend(delta)
    assert set(manager.cache.resident_keys()) == resident_before
    assert outcome.patched > 0
    assert outcome.evicted == 0
    # And the patched chunks answer exactly like a rebuilt backend.
    for level in [schema.base_level, (1, 1, 0)]:
        result = manager.query(Query.full_level(schema, level))
        truth = merged_truth(schema, [initial, delta], level)
        got: dict = {}
        for chunk in result.chunks:
            got.update(chunk.cell_dict())
        assert got == pytest.approx(truth), level


def test_refetch_mode_matches_delta_answers():
    """The non-additive fallback produces the same post-refresh answers
    as the delta wave (both exact), while preserving residency."""
    schema = apb_tiny_schema()
    initial = generate_fact_table(schema, num_tuples=200, seed=1)
    delta = generate_fact_table(schema, num_tuples=40, seed=7)
    totals = {}
    for mode in ("delta", "refetch"):
        backend = BackendDatabase(schema, initial)
        manager = AggregateCache(
            schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
        )
        manager.query(Query.full_level(schema, (1, 1, 0)))
        before = set(manager.cache.resident_keys())
        outcome = manager.refresh_from_backend(delta, mode=mode)
        assert set(manager.cache.resident_keys()) == before
        assert (outcome.patched if mode == "delta" else outcome.refetched) > 0
        result = manager.query(Query.full_level(schema, (1, 1, 0)))
        totals[mode] = {
            cell: value
            for chunk in result.chunks
            for cell, value in chunk.cell_dict().items()
        }
    assert totals["delta"] == totals["refetch"]


def test_estimator_recalibrated_after_refresh(world):
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    manager.refresh_from_backend(delta)
    assert manager.sizes.total_base_tuples == backend.num_tuples
    union = merged_truth(schema, [initial, delta], schema.base_level)
    assert manager.sizes.total_base_tuples == len(union)


def test_counts_oracle_consistent_after_refresh(world):
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcm"
    )
    manager.query(Query.full_level(schema, (0, 0, 0)))
    manager.query(Query.full_level(schema, (2, 1, 0)))
    manager.refresh_from_backend(delta)
    cached = set(manager.cache.resident_keys())
    for level in schema.all_levels():
        for number in range(schema.num_chunks(level)):
            assert manager.strategy.counts.is_computable(
                level, number
            ) == oracle_computable(schema, cached, level, number)


def test_every_level_correct_after_refresh(world):
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    for level in [(0, 0, 0), (1, 1, 1), (2, 0, 1)]:
        manager.query(Query.full_level(schema, level))
    manager.refresh_from_backend(delta)
    for level in [(0, 0, 0), (1, 1, 1), (2, 0, 1), (2, 1, 1)]:
        result = manager.query(Query.full_level(schema, level))
        truth = merged_truth(schema, [initial, delta], level)
        got: dict = {}
        for chunk in result.chunks:
            got.update(chunk.cell_dict())
        assert got == pytest.approx(truth), level


def test_repeated_refreshes(world):
    schema, initial, delta, backend = world
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    expected = initial.total()
    for seed in (10, 11, 12):
        more = generate_fact_table(schema, num_tuples=60, seed=seed)
        manager.refresh_from_backend(more)
        expected += more.total()
        result = manager.query(Query.full_level(schema, schema.apex_level))
        assert result.total_value() == pytest.approx(expected)


def test_extras_merge_on_append():
    from repro.schema import CubeSchema, Dimension

    schema = CubeSchema(
        [Dimension.flat("A", 4, 2), Dimension.flat("B", 2, 1)],
        measure=["Units", "Dollars"],
    )
    first = generate_fact_table(schema, num_tuples=50, seed=1)
    second = generate_fact_table(schema, num_tuples=50, seed=2)
    backend = BackendDatabase(schema, first)
    backend.append(second)
    apex = backend.compute_chunk((0, 0), 0)
    assert apex.measure_values(1).sum() == pytest.approx(
        first.extras[0].sum() + second.extras[0].sum()
    )
