"""The examples must run end-to-end (scaled down) without errors."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    load_example("quickstart").main(num_tuples=3_000)
    out = capsys.readouterr().out
    assert "Grand total" in out
    assert "complete_hit=True" in out


def test_drilldown_session(capsys):
    load_example("drilldown_session").main(num_tuples=3_000)
    out = capsys.readouterr().out
    assert "Roll up: grand total again" in out
    assert "Complete hits:" in out


def test_policy_comparison(capsys):
    load_example("policy_comparison").main(num_tuples=3_000, num_queries=10)
    out = capsys.readouterr().out
    assert "conventional cache" in out
    assert "active, VCMC, two-level" in out


def test_capacity_planning(capsys):
    load_example("capacity_planning").main(
        num_tuples=3_000, num_queries=8, fractions=(0.4, 1.2)
    )
    out = capsys.readouterr().out
    assert "Capacity sweep" in out
    assert "O(1) array read" in out


def test_sql_interface(capsys):
    load_example("sql_interface").main(num_tuples=3_000)
    out = capsys.readouterr().out
    assert "GROUP BY Product.Division" in out
    assert "Retailer 0" in out


def test_custom_schema(capsys):
    load_example("custom_schema").main(num_sales=500)
    out = capsys.readouterr().out
    assert "bakery" in out
    assert "LIMIT 3" in out
    assert "complete hit" in out


def test_larger_than_ram_scan(capsys):
    load_example("larger_than_ram_scan").main(
        num_waves=3, wave_tuples=1_000
    )
    out = capsys.readouterr().out
    assert "Old snapshot still consistent" in out
    assert "Compacted scan" in out
    assert "share memory with the mapped file" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "drilldown_session",
        "policy_comparison",
        "capacity_planning",
        "sql_interface",
        "custom_schema",
        "larger_than_ram_scan",
    ],
)
def test_examples_have_docstrings_and_main(name):
    module = load_example(name)
    assert module.__doc__ and "Run:" in module.__doc__
    assert callable(module.main)
