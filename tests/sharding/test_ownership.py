"""ShardMap: deterministic, balanced, order-preserving ownership."""

from __future__ import annotations

import collections

import pytest

from repro.sharding import ShardMap
from repro.sharding.ownership import chunk_hash, mix64
from repro.util.errors import ReproError


def test_mix64_is_stable_and_well_spread():
    # Fixed values pin the cross-process contract: a worker built by a
    # different interpreter must agree with the router byte for byte.
    assert mix64(0) == 0
    assert mix64(1) == mix64(1)
    outputs = {mix64(i) for i in range(1000)}
    assert len(outputs) == 1000
    low_bits = collections.Counter(mix64(i) & 7 for i in range(4096))
    assert max(low_bits.values()) < 2 * min(low_bits.values())


def test_single_shard_owns_everything(tiny_schema):
    shard_map = ShardMap(1, tiny_schema)
    for level in tiny_schema.all_levels():
        for number in range(tiny_schema.num_chunks(level)):
            assert shard_map.owner(level, number) == 0


def test_zero_shards_rejected():
    with pytest.raises(ReproError):
        ShardMap(0)


def test_ownership_is_deterministic_across_instances(tiny_schema):
    a = ShardMap(4, tiny_schema)
    b = ShardMap(4, tiny_schema)
    for level in tiny_schema.all_levels():
        for number in range(tiny_schema.num_chunks(level)):
            assert a.owner(level, number) == b.owner(level, number)


def test_ownership_is_balanced_within_one_chunk(tiny_schema):
    """Rank-based assignment: every level splits to ±1 chunk per shard."""
    for num_shards in (2, 3, 4):
        shard_map = ShardMap(num_shards, tiny_schema)
        for level in tiny_schema.all_levels():
            count = tiny_schema.num_chunks(level)
            owners = collections.Counter(
                shard_map.owner(level, n) for n in range(count)
            )
            sizes = [owners.get(s, 0) for s in range(num_shards)]
            assert sum(sizes) == count
            assert max(sizes) - min(sizes) <= 1, (
                f"level {level}: {sizes}"
            )


def test_schemaless_fallback_hashes_consistently(tiny_schema):
    shard_map = ShardMap(4)
    level = tiny_schema.base_level
    for number in range(tiny_schema.num_chunks(level)):
        expected = chunk_hash(level, number) % 4
        assert shard_map.owner(level, number) == expected


def test_split_partitions_and_preserves_order(tiny_schema):
    shard_map = ShardMap(3, tiny_schema)
    level = tiny_schema.base_level
    numbers = list(range(tiny_schema.num_chunks(level)))
    parts = shard_map.split(level, numbers)
    merged = sorted(n for owned in parts.values() for n in owned)
    assert merged == numbers
    for index, owned in parts.items():
        assert owned == sorted(owned), "plan order lost within a shard"
        assert all(shard_map.owner(level, n) == index for n in owned)
