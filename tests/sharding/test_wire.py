"""Wire codec: ndarray-free chunk payloads and partial round trips."""

from __future__ import annotations

import numpy as np

from repro import AggregateCache, BackendDatabase, CostModel
from repro.sharding import (
    ShardPartial,
    decode_chunk,
    decode_partial,
    encode_chunk,
    encode_partial,
)


def _base_chunks(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    return list(backend.compute_level(tiny_schema.base_level))


def test_chunk_roundtrip_is_exact(tiny_schema, tiny_facts):
    for chunk in _base_chunks(tiny_schema, tiny_facts):
        wire = encode_chunk(chunk)
        assert isinstance(wire[3], bytes), "payload must be raw bytes"
        back = decode_chunk(wire)
        assert back.level == tuple(chunk.level)
        assert back.number == chunk.number
        assert back.compute_cost == chunk.compute_cost
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)
        np.testing.assert_array_equal(back.counts, chunk.counts)
        assert back.cell_dict() == chunk.cell_dict()


def test_wire_chunk_contains_no_ndarrays(tiny_schema, tiny_facts):
    """The whole point of the codec: nothing pickled over the pipe is a
    numpy array (arrays pickle through slow __reduce__ machinery)."""

    def flat(value):
        if isinstance(value, (tuple, list)):
            for item in value:
                yield from flat(item)
        else:
            yield value

    chunk = _base_chunks(tiny_schema, tiny_facts)[0]
    for leaf in flat(encode_chunk(chunk)):
        assert not isinstance(leaf, np.ndarray)
    result_like = ShardPartial(
        shard=0, chunks=[chunk], complete_hit=True, direct_hits=1,
        aggregated=0, from_backend=0, tuples_aggregated=0,
        lookup_visits=1, state_updates=1, reinforcements_skipped=0,
        degraded=False, coverage=1.0, unanswered=(),
        breakdown_ms=(0.1, 0.2, 0.3, 0.4),
    )
    for leaf in flat(encode_partial(result_like)):
        assert not isinstance(leaf, np.ndarray)


def test_partial_roundtrip_from_real_result(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    manager = AggregateCache(
        tiny_schema, backend, backend.base_size_bytes * 2
    )
    from repro import Query

    ranges = tuple(
        (0, extent)
        for extent in tiny_schema.chunk_shape(tiny_schema.base_level)
    )
    result = manager.query(
        Query(level=tiny_schema.base_level, chunk_ranges=ranges)
    )
    partial = ShardPartial.from_result(3, result)
    back = decode_partial(encode_partial(partial))
    assert back.shard == 3
    assert back.complete_hit == result.complete_hit
    assert back.direct_hits == result.direct_hits
    assert back.aggregated == result.aggregated
    assert back.from_backend == result.from_backend
    assert back.coverage == result.coverage
    assert back.unanswered == tuple(result.unanswered)
    assert len(back.chunks) == len(result.chunks)
    for got, want in zip(back.chunks, result.chunks):
        assert got.cell_dict() == want.cell_dict()
