"""ShardRouter over real forked worker processes.

These tests exercise the pipes: field identity at one shard, batched
serving equivalence, the shared mmap warehouse path, mid-stream shard
death (both a real ``os._exit`` crash and an injected ``shard.rpc``
fault), and lifecycle.  Kept small — every router here forks processes.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    QueryStreamGenerator,
)
from repro.faults.errors import ShardDeadError
from repro.faults.registry import FailpointRegistry
from repro.harness.shards_bench import COMPARED_FIELDS
from repro.sharding import ShardRouter


def _stream(tiny_schema, n=30, seed=1133):
    return list(
        QueryStreamGenerator(tiny_schema, max_extent=3, seed=seed).generate(n)
    )


def _spawn(tiny_schema, backend, num_shards, **kwargs):
    capacity = max(int(backend.base_size_bytes * 0.6), 1) * num_shards
    return ShardRouter.spawn(
        num_shards, tiny_schema, capacity, backend=backend, **kwargs
    )


@pytest.fixture
def dict_backend(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    yield backend
    backend.close()


def test_one_shard_router_is_field_identical(
    tiny_schema, tiny_facts, dict_backend
):
    """The ``--shards 1`` contract, over a real pipe."""
    capacity = max(int(dict_backend.base_size_bytes * 0.6), 1)
    baseline = ConcurrentAggregateCache(
        AggregateCache(tiny_schema, dict_backend, capacity)
    )
    stream = _stream(tiny_schema)
    with _spawn(tiny_schema, dict_backend, 1) as router:
        for query in stream:
            want = baseline.query(query)
            got = router.query(query)
            for name in COMPARED_FIELDS:
                assert getattr(got, name) == getattr(want, name), name
            assert [c.number for c in got.chunks] == [
                c.number for c in want.chunks
            ]
            for a, b in zip(got.chunks, want.chunks):
                assert a.cell_dict() == b.cell_dict()
        assert router.queries_run == len(stream)


def test_batched_serve_matches_sequential(tiny_schema, dict_backend):
    """Per-shard FIFO dispatch makes the batched path field-identical
    to sequential serving — same cache evolution, same counters."""
    stream = _stream(tiny_schema, n=40)
    with _spawn(tiny_schema, dict_backend, 2) as router:
        want = router.serve(stream, workers=1)
    with _spawn(tiny_schema, dict_backend, 2) as router:
        got = router.serve(stream, workers=4, batch_size=8)
    assert len(got) == len(want)
    for a, b in zip(got, want):
        for name in COMPARED_FIELDS:
            assert getattr(a, name) == getattr(b, name), name
        for x, y in zip(a.chunks, b.chunks):
            assert x.number == y.number
            assert x.cell_dict() == y.cell_dict()


def test_workers_share_one_mmap_warehouse(
    tiny_schema, tiny_facts, dict_backend, tmp_path
):
    store_path = str(tmp_path / "warehouse.rcol")
    warehouse = BackendDatabase(
        tiny_schema, tiny_facts, CostModel(), store="mmap",
        store_path=store_path,
    )
    try:
        stream = _stream(tiny_schema, n=15)
        capacity = max(int(warehouse.base_size_bytes * 0.6), 1)
        baseline = AggregateCache(tiny_schema, dict_backend, capacity)
        with ShardRouter.spawn(
            2, tiny_schema, capacity * 2, store_path=store_path,
            cost_model=CostModel(),
        ) as router:
            for query in stream:
                want = baseline.query(query)
                got = router.query(query)
                assert got.coverage == 1.0
                for a, b in zip(got.chunks, want.chunks):
                    assert a.cell_dict() == b.cell_dict()
            for stats in router.stats():
                assert stats["alive"]
                assert stats["queries_run"] > 0
    finally:
        warehouse.close()


def test_crashed_shard_degrades_not_fails(tiny_schema, dict_backend):
    stream = _stream(tiny_schema, n=25)
    with _spawn(tiny_schema, dict_backend, 2) as router:
        victim = router.shards[1]
        victim.crash()
        degraded = 0
        for query in stream:
            numbers = query.chunk_numbers(tiny_schema)
            owned = router.shard_map.split(query.level, numbers)
            result = router.query(query)
            if victim.index not in owned:
                assert not result.degraded
                continue
            degraded += 1
            assert result.degraded
            assert sorted(result.unanswered) == sorted(
                owned[victim.index]
            )
            answered = len(numbers) - len(owned[victim.index])
            assert result.coverage == pytest.approx(
                answered / len(numbers)
            )
        assert degraded > 0, "stream never touched the crashed shard"
        assert router.shard_deaths == 1
        assert router.alive_shards == 1
        by_shard = {s["shard"]: s for s in router.stats()}
        assert by_shard[victim.index] == {
            "shard": victim.index, "alive": False
        }
        assert by_shard[0]["alive"]


def test_injected_rpc_fault_marks_shard_dead(tiny_schema, dict_backend):
    stream = _stream(tiny_schema, n=20)
    registry = FailpointRegistry(seed=7)
    registry.fail(
        "shard.rpc",
        ShardDeadError("injected rpc fault"),
        predicate=lambda ctx, index: ctx.get("shard") == 1,
    )
    with _spawn(tiny_schema, dict_backend, 2) as router:
        with registry.armed():
            results = [router.query(query) for query in stream]
        assert router.shard_deaths == 1
        assert not router.shards[1].alive
        assert any(r.degraded for r in results)
        # Everything the surviving shard answered stays exact and the
        # degraded results report their loss honestly.
        for result in results:
            assert 0.0 <= result.coverage <= 1.0
            assert result.degraded == (result.coverage < 1.0)


def test_router_close_is_idempotent(tiny_schema, dict_backend):
    router = _spawn(tiny_schema, dict_backend, 2)
    assert router.query(_stream(tiny_schema, n=1)[0]).coverage == 1.0
    router.close()
    router.close()
    for shard in router.shards:
        assert not shard.alive
        assert not shard.process.is_alive()
    with pytest.raises(ShardDeadError):
        router.shards[0].request("stats")
