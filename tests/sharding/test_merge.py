"""Router merge semantics: disjoint union, AVG recomposition, death.

Everything here runs in-process over :class:`LocalShard` — no worker
processes — with ``serialize=True`` where noted so the partials round-
trip through the exact bytes a :class:`ProcessShard` would move.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    ConcurrentAggregateCache,
    CostModel,
    Query,
    QueryStreamGenerator,
)
from repro.adaptive import AVG, COUNT, SUM, aggregate_answer
from repro.faults.errors import ShardDeadError
from repro.sharding import (
    LocalShard,
    ShardPartial,
    ShardRouter,
    WorkerSpec,
    build_shard_service,
    merge_partials,
)


def _service(tiny_schema, tiny_facts, fraction=2.0):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    capacity = max(int(backend.base_size_bytes * fraction), 1)
    return ConcurrentAggregateCache(
        AggregateCache(tiny_schema, backend, capacity)
    )


def _local_router(tiny_schema, tiny_facts, num_shards, serialize=True):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    capacity = max(int(backend.base_size_bytes * 2.0), 1)
    shards = [
        LocalShard(
            index,
            build_shard_service(
                WorkerSpec(
                    index=index,
                    num_shards=num_shards,
                    schema=tiny_schema,
                    capacity_bytes=capacity,
                    backend=backend,
                )
            ),
            serialize=serialize,
        )
        for index in range(num_shards)
    ]
    return ShardRouter(shards, tiny_schema)


def _base_query(tiny_schema):
    ranges = tuple(
        (0, extent)
        for extent in tiny_schema.chunk_shape(tiny_schema.base_level)
    )
    return Query(level=tiny_schema.base_level, chunk_ranges=ranges)


def _stream(tiny_schema, n=40, seed=4242):
    return list(
        QueryStreamGenerator(tiny_schema, max_extent=3, seed=seed).generate(n)
    )


def test_merge_with_no_partials_is_fully_degraded(tiny_schema):
    query = _base_query(tiny_schema)
    numbers = query.chunk_numbers(tiny_schema)
    result = merge_partials(query, numbers, [], dead_numbers=numbers)
    assert result.degraded
    assert not result.complete_hit
    assert result.coverage == 0.0
    assert result.chunks == []
    assert tuple(result.unanswered) == tuple(numbers)


def test_merge_single_partial_is_field_identical(tiny_schema, tiny_facts):
    """All cells on one shard: the merge must degenerate to identity."""
    service = _service(tiny_schema, tiny_facts)
    query = _base_query(tiny_schema)
    numbers = query.chunk_numbers(tiny_schema)
    own = service.query_subset(query, numbers)
    merged = merge_partials(
        query, numbers, [ShardPartial.from_result(0, own)]
    )
    for name in (
        "complete_hit", "direct_hits", "aggregated", "from_backend",
        "tuples_aggregated", "lookup_visits", "state_updates",
        "reinforcements_skipped", "degraded", "coverage",
    ):
        assert getattr(merged, name) == getattr(own, name), name
    assert tuple(merged.unanswered) == tuple(own.unanswered)
    assert [c.number for c in merged.chunks] == [
        c.number for c in own.chunks
    ]


def test_merge_orders_cells_by_plan_not_by_arrival(tiny_schema, tiny_facts):
    service = _service(tiny_schema, tiny_facts)
    query = _base_query(tiny_schema)
    numbers = query.chunk_numbers(tiny_schema)
    split = len(numbers) // 2
    first = service.query_subset(query, numbers[:split])
    second = service.query_subset(query, numbers[split:])
    merged = merge_partials(
        query,
        numbers,
        # Deliberately out of plan order.
        [
            ShardPartial.from_result(1, second),
            ShardPartial.from_result(0, first),
        ],
    )
    assert [c.number for c in merged.chunks] == list(numbers)
    assert merged.coverage == 1.0
    assert not merged.degraded


@pytest.mark.parametrize("aggregate", (SUM, COUNT, AVG))
def test_aggregates_recompose_across_shards(
    tiny_schema, tiny_facts, aggregate
):
    """AVG from summed SUM/COUNT across shard partials must equal the
    unsharded answer — the additive-merge contract."""
    baseline = _service(tiny_schema, tiny_facts)
    router = _local_router(tiny_schema, tiny_facts, num_shards=3)
    for query in _stream(tiny_schema, n=25):
        want = aggregate_answer(baseline.query(query).chunks, aggregate)
        result, got = router.aggregate(query, aggregate)
        assert not result.degraded
        assert got == pytest.approx(want, rel=1e-12, abs=1e-9)


def test_local_router_matches_unsharded_service(tiny_schema, tiny_facts):
    baseline = _service(tiny_schema, tiny_facts)
    router = _local_router(tiny_schema, tiny_facts, num_shards=2)
    for query in _stream(tiny_schema):
        want = baseline.query(query)
        got = router.query(query)
        assert got.coverage == 1.0
        assert [c.number for c in got.chunks] == [
            c.number for c in want.chunks
        ]
        for a, b in zip(got.chunks, want.chunks):
            assert a.cell_dict() == b.cell_dict()


def test_dead_shard_slices_surface_as_exact_partials(
    tiny_schema, tiny_facts
):
    """A dead shard's chunks land in ``unanswered`` with plan-relative
    coverage; everything returned stays exact (PR 5 semantics)."""
    baseline = _service(tiny_schema, tiny_facts)
    router = _local_router(tiny_schema, tiny_facts, num_shards=2)
    victim = router.shards[1]

    def dead_rpc(query, numbers, timeout_s=None, contract=None):
        raise ShardDeadError("injected: shard 1 stopped answering")

    victim.query_partial = dead_rpc

    hit_dead = 0
    for query in _stream(tiny_schema):
        numbers = query.chunk_numbers(tiny_schema)
        dead_slice = [
            n
            for n in numbers
            if router.shard_map.owner(query.level, n) == victim.index
        ]
        want = baseline.query(query)
        got = router.query(query)
        if not dead_slice:
            assert not got.degraded
            assert got.coverage == 1.0
            continue
        hit_dead += 1
        assert got.degraded
        assert not got.complete_hit
        assert sorted(got.unanswered) == sorted(dead_slice)
        answered = [n for n in numbers if n not in set(dead_slice)]
        assert got.coverage == pytest.approx(
            len(answered) / len(numbers)
        )
        assert [c.number for c in got.chunks] == answered
        want_cells = {c.number: c.cell_dict() for c in want.chunks}
        for chunk in got.chunks:
            assert chunk.cell_dict() == want_cells[chunk.number]
    assert hit_dead > 0, "stream never touched the dead shard"
    assert router.shard_deaths == 1


def test_batched_serve_matches_per_query_path(tiny_schema, tiny_facts):
    stream = _stream(tiny_schema, n=30)
    sequential = _local_router(tiny_schema, tiny_facts, num_shards=2)
    want = [sequential.query(q) for q in stream]
    batched = _local_router(tiny_schema, tiny_facts, num_shards=2)
    got = batched.serve(stream, workers=4, batch_size=8)
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.complete_hit == b.complete_hit
        assert a.coverage == b.coverage
        assert [c.number for c in a.chunks] == [c.number for c in b.chunks]
        for x, y in zip(a.chunks, b.chunks):
            assert x.cell_dict() == y.cell_dict()
