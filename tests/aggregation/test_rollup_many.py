"""Property tests: ``rollup_many`` ≡ per-target ``rollup_chunks``.

The batched kernel combines many targets into one group-by pass over a
``(target, cell)`` key space; these tests check that the combination is
invisible — every output chunk is field-for-field (bit-for-bit) identical
to aggregating its target alone — across random schemas, level pairs,
target sets and sparse source chunks, including the degenerate shapes
(no targets, targets with no sources, all-empty source chunks).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import rollup_chunks, rollup_many
from repro.chunks.chunk import Chunk, ChunkOrigin
from repro.obs import Observability
from repro.schema import CubeSchema, Dimension, apb_tiny_schema
from repro.util.errors import ChunkAlignmentError, ReproError


@st.composite
def random_schema(draw):
    """A random small uniform cube, sometimes with an extra measure."""
    ndims = draw(st.integers(1, 3))
    dims = []
    for i in range(ndims):
        height = draw(st.integers(1, 3))
        cards = [1]
        for _ in range(height):
            cards.append(cards[-1] * draw(st.integers(1, 3)))
        chunks = []
        for card in cards:
            divisors = [d for d in range(1, card + 1) if card % d == 0]
            chunks.append(draw(st.sampled_from(divisors)))
        try:
            dims.append(Dimension.uniform(f"D{i}", cards, chunks))
        except ChunkAlignmentError:
            dims.append(Dimension.uniform(f"D{i}", cards, cards))
    measures = ("Sales", "Cost") if draw(st.booleans()) else ("Sales",)
    return CubeSchema(dims, measure=measures, bytes_per_tuple=12)


@st.composite
def random_source_chunk(draw, schema, level, number):
    """A sparse chunk at ``(level, number)`` with unique in-span cells and
    integer-valued measures (exact under any summation order)."""
    spans = schema.chunks.chunk_cell_spans(level, number)
    max_cells = 1
    for lo, hi in spans:
        max_cells *= hi - lo
    k = draw(st.integers(0, min(4, max_cells)))
    cells = draw(
        st.sets(
            st.tuples(*(st.integers(lo, hi - 1) for lo, hi in spans)),
            min_size=k,
            max_size=k,
        )
    )
    ordered = sorted(cells)
    n = len(ordered)
    coords = tuple(
        np.array([cell[d] for cell in ordered], dtype=np.int64)
        for d in range(len(spans))
    )
    values = np.array(
        draw(
            st.lists(
                st.integers(-100, 100), min_size=n, max_size=n
            )
        ),
        dtype=np.float64,
    )
    counts = np.array(
        draw(st.lists(st.integers(1, 5), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    extras = tuple(
        np.array(
            draw(
                st.lists(st.integers(-100, 100), min_size=n, max_size=n)
            ),
            dtype=np.float64,
        )
        for _ in range(schema.num_extra_measures)
    )
    return Chunk(
        level=level,
        number=number,
        coords=coords,
        values=values,
        counts=counts,
        extras=extras,
    )


def assert_chunks_identical(got: Chunk, want: Chunk) -> None:
    assert got.level == want.level
    assert got.number == want.number
    assert got.origin == want.origin
    assert got.compute_cost == want.compute_cost
    assert len(got.coords) == len(want.coords)
    for a, b in zip(got.coords, want.coords):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    assert np.array_equal(got.values, want.values)
    assert np.array_equal(got.counts, want.counts)
    assert len(got.extras) == len(want.extras)
    for a, b in zip(got.extras, want.extras):
        assert np.array_equal(a, b)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_rollup_many_matches_per_target_rollup(data):
    schema = data.draw(random_schema(), label="schema")
    levels = list(schema.all_levels())
    target_level = data.draw(st.sampled_from(levels), label="target_level")
    detailed = [
        l
        for l in levels
        if all(s >= t for s, t in zip(l, target_level))
    ]
    source_level = data.draw(st.sampled_from(detailed), label="source_level")

    num_targets = schema.num_chunks(target_level)
    targets = data.draw(
        st.lists(
            st.integers(0, num_targets - 1),
            min_size=0,
            max_size=min(4, num_targets),
            unique=True,
        ),
        label="targets",
    )
    sources_per_target = []
    for number in targets:
        covering = schema.get_parent_chunk_numbers(
            target_level, number, source_level
        ).tolist()
        picked = data.draw(
            st.lists(
                st.sampled_from(covering),
                min_size=0,
                max_size=min(3, len(covering)),
                unique=True,
            ),
            label=f"sources[{number}]",
        )
        sources_per_target.append(
            [
                data.draw(
                    random_source_chunk(schema, source_level, sn),
                    label=f"chunk[{number},{sn}]",
                )
                for sn in picked
            ]
        )

    batched = rollup_many(schema, target_level, targets, sources_per_target)
    assert len(batched) == len(targets)
    for number, sources, got in zip(targets, sources_per_target, batched):
        want = rollup_chunks(schema, target_level, number, sources)
        assert_chunks_identical(got, want)


def test_empty_target_list():
    schema = apb_tiny_schema()
    assert rollup_many(schema, (0, 0, 0), [], []) == []


def test_target_with_no_sources_is_empty_chunk():
    schema = apb_tiny_schema()
    [chunk] = rollup_many(schema, (0, 0, 0), [0], [[]])
    assert chunk.is_empty
    assert chunk.level == (0, 0, 0) and chunk.number == 0
    assert chunk.compute_cost == 0.0
    assert len(chunk.coords) == 3
    assert len(chunk.extras) == schema.num_extra_measures


def test_all_empty_source_chunks():
    schema = apb_tiny_schema()
    base = schema.base_level
    empties = [Chunk.empty(base, n, ndims=3) for n in (0, 1)]
    covering = schema.get_parent_chunk_numbers((0, 0, 0), 0, base).tolist()
    assert all(n in covering for n in (0, 1))
    [chunk] = rollup_many(schema, (0, 0, 0), [0], [empties])
    assert chunk.is_empty
    # Empty sources still count toward the work the kernel had to inspect.
    assert chunk.compute_cost == 0.0


def test_mixed_source_levels_rejected():
    schema = apb_tiny_schema()
    base = schema.base_level
    fine = Chunk.empty(base, 0, ndims=3)
    coarse = Chunk.empty((1, 1, 1), 0, ndims=3)
    with pytest.raises(ReproError, match="share one level"):
        rollup_many(schema, (0, 0, 0), [0], [[fine, coarse]])


def test_downward_aggregation_rejected():
    schema = apb_tiny_schema()
    coarse = Chunk.empty((0, 0, 0), 0, ndims=3)
    with pytest.raises(ReproError, match="more\\s+detailed"):
        rollup_many(schema, schema.base_level, [0], [[coarse]])


def test_origin_is_applied_to_every_output():
    schema = apb_tiny_schema()
    out = rollup_many(
        schema,
        (0, 0, 0),
        [0],
        [[]],
        origin=ChunkOrigin.BACKEND,
    )
    assert out[0].origin is ChunkOrigin.BACKEND


def test_non_uniform_chunk_widths_fall_back_to_global_keys():
    """Targets with unequal span widths can't share a chunk-local key
    shape; the kernel's level-global fallback must still match the
    per-target path exactly."""
    dim = Dimension(
        "D0",
        cardinalities=[1, 4],
        parent_maps=[None, [0, 0, 0, 0]],
        chunk_boundaries=[[0, 1], [0, 1, 4]],  # widths 1 and 3
    )
    schema = CubeSchema([dim], bytes_per_tuple=12)
    level = (1,)
    sources_per_target = [
        [
            Chunk(
                level=level,
                number=0,
                coords=(np.array([0], dtype=np.int64),),
                values=np.array([5.0]),
                counts=np.array([2], dtype=np.int64),
            )
        ],
        [
            Chunk(
                level=level,
                number=1,
                coords=(np.array([1, 3], dtype=np.int64),),
                values=np.array([1.0, 7.0]),
                counts=np.array([1, 4], dtype=np.int64),
            )
        ],
    ]
    batched = rollup_many(schema, level, [0, 1], sources_per_target)
    for number, sources, got in zip([0, 1], sources_per_target, batched):
        want = rollup_chunks(schema, level, number, sources)
        assert_chunks_identical(got, want)


def test_batched_call_metrics():
    schema = apb_tiny_schema()
    obs = Observability.in_memory()
    rollup_many(schema, (0, 0, 0), [0], [[]], obs=obs)
    rollup_many(schema, (0, 0, 0), [0], [[]], obs=obs)
    assert obs.metrics.counter("aggregation.batched_calls").value == 2
