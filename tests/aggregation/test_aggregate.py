"""Roll-up kernel tests: aggregation must match direct fact aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import rollup_chunks
from repro.chunks import Chunk, ChunkOrigin
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from tests.helpers import direct_aggregate, expected_cells_in_chunk


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def base_chunks(backend):
    return [backend.base_chunk(n) for n in backend.base_chunk_numbers()]


def test_rollup_base_to_apex_matches_facts(schema, tiny_backend, tiny_facts):
    sources = base_chunks(tiny_backend)
    apex = rollup_chunks(schema, schema.apex_level, 0, sources)
    assert apex.size_tuples == 1
    assert apex.total() == pytest.approx(tiny_facts.total())
    assert apex.counts.sum() == tiny_facts.counts.sum()


@pytest.mark.parametrize(
    "level", [(1, 1, 1), (0, 1, 1), (2, 0, 0), (1, 0, 1), (0, 0, 0)]
)
def test_rollup_each_level_matches_direct(level, schema, tiny_backend, tiny_facts):
    truth = direct_aggregate(tiny_facts, level)
    for number in range(schema.num_chunks(level)):
        covering = schema.get_parent_chunk_numbers(
            level, number, schema.base_level
        )
        sources = [tiny_backend.base_chunk(int(n)) for n in covering]
        chunk = rollup_chunks(schema, level, number, sources)
        expected = expected_cells_in_chunk(schema, truth, level, number)
        assert chunk.cell_dict() == pytest.approx(expected)


def test_rollup_is_path_independent(schema, tiny_backend, tiny_facts):
    """Aggregating base->mid->apex equals base->apex (associativity)."""
    sources = base_chunks(tiny_backend)
    direct = rollup_chunks(schema, (0, 0, 0), 0, sources)
    for mid in schema.parents_of((0, 0, 0)):
        mids = []
        for number in range(schema.num_chunks(mid)):
            covering = schema.get_parent_chunk_numbers(
                mid, number, schema.base_level
            )
            mids.append(
                rollup_chunks(
                    schema,
                    mid,
                    number,
                    [tiny_backend.base_chunk(int(n)) for n in covering],
                )
            )
        via = rollup_chunks(schema, (0, 0, 0), 0, mids)
        assert via.cell_dict() == pytest.approx(direct.cell_dict())


def test_rollup_compute_cost_counts_input_tuples(schema, tiny_backend):
    sources = base_chunks(tiny_backend)
    total_in = sum(c.size_tuples for c in sources)
    chunk = rollup_chunks(schema, (0, 0, 0), 0, sources)
    assert chunk.compute_cost == float(total_in)


def test_rollup_empty_sources(schema):
    chunk = rollup_chunks(schema, (0, 0, 0), 0, [])
    assert chunk.is_empty
    chunk = rollup_chunks(
        schema, (0, 0, 0), 0, [Chunk.empty(schema.base_level, 0, 3)]
    )
    assert chunk.is_empty
    assert chunk.compute_cost == 0.0


def test_rollup_origin_passed_through(schema, tiny_backend):
    chunk = rollup_chunks(
        schema,
        (0, 0, 0),
        0,
        base_chunks(tiny_backend),
        origin=ChunkOrigin.BACKEND,
    )
    assert chunk.origin is ChunkOrigin.BACKEND


def test_rollup_rejects_mixed_levels(schema, tiny_backend):
    a = tiny_backend.base_chunk(0)
    b = rollup_chunks(schema, (1, 1, 1), 0, [a])
    with pytest.raises(ReproError, match="share one level"):
        rollup_chunks(schema, (0, 0, 0), 0, [a, b])


def test_rollup_rejects_downward_aggregation(schema, tiny_backend):
    apex = rollup_chunks(schema, (0, 0, 0), 0, [tiny_backend.base_chunk(0)])
    with pytest.raises(ReproError, match="more\\s+detailed"):
        rollup_chunks(schema, schema.base_level, 0, [apex])


def test_rollup_detects_wrong_sources(schema, tiny_backend):
    """Sources from the wrong region must be rejected, not silently used."""
    numbers = tiny_backend.base_chunk_numbers()
    wrong = tiny_backend.base_chunk(numbers[-1])
    target_level = schema.base_level  # identity level, wrong chunk number
    with pytest.raises(ReproError, match="outside chunk"):
        rollup_chunks(schema, target_level, numbers[0], [wrong])


def test_counts_accumulate_multiplicities(schema):
    level = (1, 1, 1)
    base = schema.base_level
    sources = [
        Chunk(
            level=base,
            number=0,
            coords=(np.array([0, 1]), np.array([0, 0]), np.array([0, 0])),
            values=np.array([1.0, 2.0]),
            counts=np.array([3, 4]),
        )
    ]
    chunk = rollup_chunks(schema, level, 0, sources)
    # Product ordinals 0,1 at base both map to 0 at level 1.
    assert chunk.size_tuples == 1
    assert chunk.values[0] == pytest.approx(3.0)
    assert chunk.counts[0] == 7


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_rollup_grand_total_invariant(seed):
    """Property: any level's roll-up preserves the measure's grand total."""
    from repro import BackendDatabase, generate_fact_table

    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=50, seed=seed)
    backend = BackendDatabase(schema, facts)
    rng = np.random.default_rng(seed)
    levels = list(schema.all_levels())
    level = levels[rng.integers(0, len(levels))]
    total = 0.0
    for number in range(schema.num_chunks(level)):
        covering = schema.get_parent_chunk_numbers(
            level, number, schema.base_level
        )
        chunk = rollup_chunks(
            schema,
            level,
            number,
            [backend.base_chunk(int(n)) for n in covering],
        )
        total += chunk.total()
    assert total == pytest.approx(facts.total())
