"""Property tests on the chunk store's accounting invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.chunks import Chunk, ChunkOrigin

BPT = 10


def make_chunk(number: int, cells: int, origin: ChunkOrigin):
    return Chunk(
        level=(1,),
        number=number,
        coords=(np.arange(cells, dtype=np.int64),),
        values=np.ones(cells),
        counts=np.ones(cells, dtype=np.int64),
        origin=origin,
    )


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(30, 400),
    policy_name=st.sampled_from(["benefit", "two_level"]),
    operations=st.lists(
        st.tuples(
            st.integers(0, 30),        # chunk number
            st.integers(0, 8),         # cells
            st.booleans(),             # backend-class?
            st.floats(0, 1000),        # benefit
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_accounting_invariants_under_churn(capacity, policy_name, operations):
    """After any insert sequence:

    * used_bytes equals the sum of resident chunk sizes;
    * used_bytes never exceeds the capacity;
    * membership agrees with the entry map;
    * every eviction was reported exactly once.
    """
    cache = ChunkCache(capacity, make_policy(policy_name), BPT)
    resident: dict = {}
    for number, cells, is_backend, benefit in operations:
        origin = (
            ChunkOrigin.BACKEND if is_backend else ChunkOrigin.CACHE_COMPUTED
        )
        chunk = make_chunk(number, cells, origin)
        outcome = cache.insert(chunk, benefit=benefit)
        for evicted in outcome.evicted:
            assert evicted.key in resident
            del resident[evicted.key]
        if outcome.inserted:
            resident[chunk.key] = chunk

        assert cache.used_bytes <= cache.capacity_bytes
        expected_bytes = sum(
            c.size_bytes(BPT) for c in resident.values()
        )
        assert cache.used_bytes == expected_bytes
        assert set(cache.resident_keys()) == set(resident)


@settings(max_examples=30, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 10), st.integers(1, 5)),
        min_size=1,
        max_size=25,
    )
)
def test_two_level_never_evicts_backend_for_computed(operations):
    """Class invariant: no insert of a cache-computed chunk ever removes a
    backend-class chunk, whatever the sequence."""
    cache = ChunkCache(120, make_policy("two_level"), BPT)
    for number, cells in operations:
        chunk = make_chunk(
            number + 100, cells, ChunkOrigin.CACHE_COMPUTED
        )
        outcome = cache.insert(chunk, benefit=1.0)
        for evicted in outcome.evicted:
            assert not evicted.origin.is_backend_class
        # Interleave a backend insert to create pressure (backend chunks
        # may displace each other — only the computed->backend direction
        # is forbidden).
        cache.insert(make_chunk(number, cells, ChunkOrigin.BACKEND), 1.0)
