"""Replacement policy tests: benefit CLOCK and the two-level policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.replacement import POLICY_NAMES, make_policy
from repro.cache.replacement.base import clock_weight
from repro.cache.store import ChunkCache
from repro.chunks import Chunk, ChunkOrigin
from repro.util.errors import ReproError

BPT = 10


def make_chunk(number, cells=4, origin=ChunkOrigin.BACKEND, level=(1,)):
    return Chunk(
        level=level,
        number=number,
        coords=(np.arange(cells, dtype=np.int64),),
        values=np.ones(cells),
        counts=np.ones(cells, dtype=np.int64),
        origin=origin,
    )


def test_registry():
    assert set(POLICY_NAMES) == {"benefit", "two_level", "lru"}
    with pytest.raises(ReproError):
        make_policy("nope")


class TestLRUPolicy:
    def test_evicts_oldest_first(self):
        cache = ChunkCache(80, make_policy("lru"), BPT)
        cache.insert(make_chunk(0), benefit=999.0)  # benefit is ignored
        cache.insert(make_chunk(1), benefit=0.0)
        cache.insert(make_chunk(2), benefit=0.0)
        assert not cache.contains((1,), 0)
        assert cache.contains((1,), 1) and cache.contains((1,), 2)

    def test_hit_refreshes_recency(self):
        cache = ChunkCache(80, make_policy("lru"), BPT)
        cache.insert(make_chunk(0), benefit=0.0)
        cache.insert(make_chunk(1), benefit=0.0)
        cache.get((1,), 0)  # chunk 0 is now the most recent
        cache.insert(make_chunk(2), benefit=0.0)
        assert cache.contains((1,), 0)
        assert not cache.contains((1,), 1)

    def test_pinned_skipped(self):
        cache = ChunkCache(80, make_policy("lru"), BPT)
        cache.insert(make_chunk(0), benefit=0.0)
        cache.entry((1,), 0).pinned = True
        cache.insert(make_chunk(1), benefit=0.0)
        cache.insert(make_chunk(2), benefit=0.0)
        assert cache.contains((1,), 0)
        assert not cache.contains((1,), 1)

    def test_benefit_blindness_vs_benefit_policy(self):
        """The control: LRU throws away an expensive chunk that benefit-
        CLOCK keeps."""
        lru = ChunkCache(80, make_policy("lru"), BPT)
        clock = ChunkCache(80, make_policy("benefit"), BPT)
        for cache in (lru, clock):
            cache.insert(make_chunk(0), benefit=10_000.0)
            cache.insert(make_chunk(1), benefit=0.0)
            cache.insert(make_chunk(2), benefit=0.0)
        assert not lru.contains((1,), 0)
        assert clock.contains((1,), 0)


class TestBenefitPolicy:
    def test_higher_benefit_survives(self):
        cache = ChunkCache(80, make_policy("benefit"), BPT)
        cache.insert(make_chunk(0), benefit=0.0)
        cache.insert(make_chunk(1), benefit=1000.0)
        cache.insert(make_chunk(2), benefit=0.0)  # forces one eviction
        assert cache.contains((1,), 1)
        assert not cache.contains((1,), 0)

    def test_hit_restores_clock(self):
        cache = ChunkCache(1000, make_policy("benefit"), BPT)
        cache.insert(make_chunk(0), benefit=100.0)
        entry = cache.entry((1,), 0)
        entry.clock = 0.0
        cache.get((1,), 0)
        assert entry.clock == pytest.approx(clock_weight(100.0))

    def test_no_class_preference(self):
        cache = ChunkCache(80, make_policy("benefit"), BPT)
        cache.insert(make_chunk(0, origin=ChunkOrigin.BACKEND), benefit=0.0)
        cache.insert(
            make_chunk(1, origin=ChunkOrigin.CACHE_COMPUTED), benefit=0.0
        )
        # A computed chunk can displace a backend chunk under plain benefit.
        outcome = cache.insert(
            make_chunk(2, origin=ChunkOrigin.CACHE_COMPUTED), benefit=0.0
        )
        assert outcome.inserted
        assert not cache.contains((1,), 0)


class TestTwoLevelPolicy:
    def test_computed_cannot_displace_backend(self):
        cache = ChunkCache(80, make_policy("two_level"), BPT)
        cache.insert(make_chunk(0, origin=ChunkOrigin.BACKEND), benefit=0.0)
        cache.insert(make_chunk(1, origin=ChunkOrigin.PRELOAD), benefit=0.0)
        outcome = cache.insert(
            make_chunk(2, origin=ChunkOrigin.CACHE_COMPUTED), benefit=999.0
        )
        assert not outcome.inserted
        assert cache.contains((1,), 0) and cache.contains((1,), 1)

    def test_backend_displaces_computed_first(self):
        cache = ChunkCache(80, make_policy("two_level"), BPT)
        cache.insert(
            make_chunk(0, origin=ChunkOrigin.CACHE_COMPUTED), benefit=999.0
        )
        cache.insert(make_chunk(1, origin=ChunkOrigin.BACKEND), benefit=0.0)
        outcome = cache.insert(
            make_chunk(2, origin=ChunkOrigin.BACKEND), benefit=0.0
        )
        assert outcome.inserted
        # The computed chunk goes despite its huge benefit; the backend
        # chunk stays (class priority dominates benefit).
        assert not cache.contains((1,), 0)
        assert cache.contains((1,), 1)

    def test_backend_falls_back_to_backend_victims(self):
        cache = ChunkCache(80, make_policy("two_level"), BPT)
        cache.insert(make_chunk(0, origin=ChunkOrigin.BACKEND), benefit=0.0)
        cache.insert(make_chunk(1, origin=ChunkOrigin.BACKEND), benefit=5.0)
        outcome = cache.insert(
            make_chunk(2, origin=ChunkOrigin.BACKEND), benefit=0.0
        )
        assert outcome.inserted
        assert not cache.contains((1,), 0)

    def test_computed_displaces_computed(self):
        cache = ChunkCache(80, make_policy("two_level"), BPT)
        cache.insert(
            make_chunk(0, origin=ChunkOrigin.CACHE_COMPUTED), benefit=0.0
        )
        cache.insert(
            make_chunk(1, origin=ChunkOrigin.CACHE_COMPUTED), benefit=50.0
        )
        outcome = cache.insert(
            make_chunk(2, origin=ChunkOrigin.CACHE_COMPUTED), benefit=1.0
        )
        assert outcome.inserted
        assert not cache.contains((1,), 0)
        assert cache.contains((1,), 1)

    def test_group_reinforcement_bumps_clocks(self):
        policy = make_policy("two_level")
        cache = ChunkCache(1000, policy, BPT)
        cache.insert(make_chunk(0), benefit=1.0)
        cache.insert(make_chunk(1), benefit=1.0)
        entries = [cache.entry((1,), n) for n in range(2)]
        before = [e.clock for e in entries]
        policy.on_aggregate_use(entries, benefit_ms=100.0)
        for b, e in zip(before, entries):
            assert e.clock == pytest.approx(b + clock_weight(100.0))

    def test_reinforcement_can_be_disabled(self):
        from repro.cache.replacement.two_level import TwoLevelPolicy

        policy = TwoLevelPolicy(reinforce_groups=False)
        cache = ChunkCache(1000, policy, BPT)
        cache.insert(make_chunk(0), benefit=1.0)
        entry = cache.entry((1,), 0)
        before = entry.clock
        policy.on_aggregate_use([entry], benefit_ms=100.0)
        assert entry.clock == before

    def test_reinforced_group_survives_pressure(self):
        policy = make_policy("two_level")
        cache = ChunkCache(120, policy, BPT)
        for n in range(3):
            cache.insert(make_chunk(n), benefit=0.0)
        policy.on_aggregate_use([cache.entry((1,), 1)], benefit_ms=1000.0)
        # Two more backend inserts force two evictions: the reinforced
        # chunk must be the survivor.
        cache.insert(make_chunk(3), benefit=0.0)
        cache.insert(make_chunk(4), benefit=0.0)
        assert cache.contains((1,), 1)
