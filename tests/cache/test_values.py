"""Pluggable cache value backends: dict / shm / spill equivalence.

Whatever backend holds the payload bytes, the cache must answer with
bit-identical chunks — the round trip through shared memory or a spill
file is an implementation detail the query path never sees.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import AggregateCache, BackendDatabase, CostModel, Query
from repro.cache.values import (
    DiskSpillValues,
    InProcessValues,
    SharedMemoryValues,
    make_value_backend,
    payload_nbytes,
    read_payload,
    write_payload,
)
from repro.util.errors import ReproError

BACKENDS = ("dict", "shm", "spill")


def _chunks(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    return list(backend.compute_level(tiny_schema.base_level))


@pytest.mark.parametrize("kind", BACKENDS)
def test_payload_roundtrip_is_bit_exact(tiny_schema, tiny_facts, kind):
    values = make_value_backend(kind)
    try:
        for chunk in _chunks(tiny_schema, tiny_facts):
            stored = values.put((chunk.level, chunk.number), chunk)
            assert stored.level == chunk.level
            assert stored.number == chunk.number
            assert stored.origin == chunk.origin
            for got, want in zip(stored.coords, chunk.coords):
                np.testing.assert_array_equal(got, want)
            np.testing.assert_array_equal(stored.values, chunk.values)
            np.testing.assert_array_equal(stored.counts, chunk.counts)
            assert stored.cell_dict() == chunk.cell_dict()
    finally:
        values.close()


def test_buffer_codec_roundtrip(tiny_schema, tiny_facts):
    chunk = _chunks(tiny_schema, tiny_facts)[0]
    buffer = bytearray(payload_nbytes(chunk))
    write_payload(chunk, memoryview(buffer))
    back = read_payload(
        chunk.level, chunk.number, chunk.compute_cost, memoryview(buffer)
    )
    assert back.cell_dict() == chunk.cell_dict()
    assert back.origin == chunk.origin
    assert back.compute_cost == chunk.compute_cost


def test_dict_backend_stores_the_same_object(tiny_schema, tiny_facts):
    values = InProcessValues()
    chunk = _chunks(tiny_schema, tiny_facts)[0]
    assert values.put((chunk.level, chunk.number), chunk) is chunk
    values.discard((chunk.level, chunk.number))
    values.close()


def test_shm_discard_releases_segment_but_not_live_views(
    tiny_schema, tiny_facts
):
    values = SharedMemoryValues()
    chunk = _chunks(tiny_schema, tiny_facts)[0]
    key = (chunk.level, chunk.number)
    stored = values.put(key, chunk)
    assert len(values) == 1
    cells = stored.cell_dict()
    values.discard(key)
    assert len(values) == 0
    # The view must stay readable after the segment name is unlinked.
    assert stored.cell_dict() == cells
    values.close()
    values.close()


def test_spill_backend_cleans_up_its_directory(tiny_schema, tiny_facts):
    values = DiskSpillValues()
    directory = values.directory
    chunk = _chunks(tiny_schema, tiny_facts)[0]
    values.put((chunk.level, chunk.number), chunk)
    assert len(os.listdir(directory)) == 1
    values.discard((chunk.level, chunk.number))
    assert len(os.listdir(directory)) == 0
    values.close()
    values.close()
    assert not os.path.exists(directory)


def test_spill_backend_respects_caller_directory(
    tiny_schema, tiny_facts, tmp_path
):
    spill_dir = tmp_path / "spill"
    values = DiskSpillValues(spill_dir)
    chunk = _chunks(tiny_schema, tiny_facts)[0]
    values.put((chunk.level, chunk.number), chunk)
    values.close()
    # A caller-owned directory is never removed on close.
    assert spill_dir.exists()


def test_unknown_backend_kind_rejected():
    with pytest.raises(ReproError, match="unknown cache value backend"):
        make_value_backend("redis")


def test_make_value_backend_passes_instances_through():
    values = InProcessValues()
    assert make_value_backend(values) is values
    assert make_value_backend(None).kind == "dict"


@pytest.mark.parametrize("kind", ("shm", "spill"))
def test_manager_answers_identically_on_any_backend(
    tiny_schema, tiny_facts, kind
):
    """End to end: a manager whose cache payloads live in shared memory
    or spill files serves the same answers as the default."""
    queries = [
        Query(
            level=tiny_schema.base_level,
            chunk_ranges=tuple(
                (0, extent)
                for extent in tiny_schema.chunk_shape(tiny_schema.base_level)
            ),
        )
    ]
    for level in list(tiny_schema.all_levels())[:4]:
        queries.append(
            Query(
                level=level,
                chunk_ranges=tuple(
                    (0, 1) for _ in tiny_schema.chunk_shape(level)
                ),
            )
        )

    def serve(cache_values):
        backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
        manager = AggregateCache(
            tiny_schema,
            backend,
            backend.base_size_bytes * 2,
            cache_values=cache_values,
        )
        out = [manager.query(query) for query in queries]
        cells = [
            [c.cell_dict() for c in result.chunks] for result in out
        ]
        stats = [
            (r.complete_hit, r.direct_hits, r.aggregated, r.from_backend)
            for r in out
        ]
        manager.cache.close()
        return cells, stats

    want_cells, want_stats = serve("dict")
    got_cells, got_stats = serve(kind)
    assert got_stats == want_stats
    assert got_cells == want_cells
