"""WATCHMAN-style profit admission tests."""

from __future__ import annotations

import numpy as np

from repro.cache.replacement.benefit_clock import BenefitClockPolicy
from repro.cache.store import ChunkCache
from repro.chunks import Chunk, ChunkOrigin

BPT = 10


def make_chunk(number, cells=4):
    return Chunk(
        level=(1,),
        number=number,
        coords=(np.arange(cells, dtype=np.int64),),
        values=np.ones(cells),
        counts=np.ones(cells, dtype=np.int64),
        origin=ChunkOrigin.BACKEND,
    )


def full_cache(profit_admission: bool) -> ChunkCache:
    cache = ChunkCache(80, BenefitClockPolicy(profit_admission), BPT)
    cache.insert(make_chunk(0), benefit=100.0)
    cache.insert(make_chunk(1), benefit=100.0)
    # Drain the clocks so eviction candidates exist immediately.
    for entry in cache.entries():
        entry.clock = 0.0
    return cache


def test_low_profit_chunk_rejected():
    cache = full_cache(profit_admission=True)
    outcome = cache.insert(make_chunk(2), benefit=1.0)
    assert not outcome.inserted
    assert cache.contains((1,), 0) and cache.contains((1,), 1)
    assert cache.stats.rejects == 1


def test_high_profit_chunk_admitted():
    cache = full_cache(profit_admission=True)
    outcome = cache.insert(make_chunk(2), benefit=500.0)
    assert outcome.inserted
    assert len(outcome.evicted) == 1


def test_equal_profit_admitted():
    cache = full_cache(profit_admission=True)
    outcome = cache.insert(make_chunk(2), benefit=100.0)
    assert outcome.inserted


def test_default_policy_admits_everything():
    cache = full_cache(profit_admission=False)
    outcome = cache.insert(make_chunk(2), benefit=0.0)
    assert outcome.inserted


def test_admission_only_consulted_under_pressure():
    cache = ChunkCache(1000, BenefitClockPolicy(True), BPT)
    cache.insert(make_chunk(0), benefit=100.0)
    # Plenty of space: no victims, so even a zero-benefit chunk enters.
    outcome = cache.insert(make_chunk(1), benefit=0.0)
    assert outcome.inserted


def test_rejection_leaves_victims_resident():
    cache = full_cache(profit_admission=True)
    before = set(cache.resident_keys())
    cache.insert(make_chunk(2), benefit=1.0)
    assert set(cache.resident_keys()) == before
    assert cache.used_bytes == 80
