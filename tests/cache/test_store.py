"""Chunk store tests: byte accounting, atomic inserts, eviction plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.chunks import Chunk, ChunkOrigin
from repro.util.errors import ReproError

BPT = 10  # bytes per tuple used throughout these tests


def make_chunk(number=0, cells=4, level=(1,), origin=ChunkOrigin.BACKEND):
    return Chunk(
        level=level,
        number=number,
        coords=(np.arange(cells, dtype=np.int64),),
        values=np.ones(cells),
        counts=np.ones(cells, dtype=np.int64),
        origin=origin,
    )


def make_cache(capacity=100, policy="benefit"):
    return ChunkCache(capacity, make_policy(policy), BPT)


def test_insert_and_read_back():
    cache = make_cache()
    chunk = make_chunk()
    outcome = cache.insert(chunk, benefit=1.0)
    assert outcome.inserted and not outcome.evicted
    assert cache.contains((1,), 0)
    assert cache.get((1,), 0) is chunk
    assert cache.used_bytes == 40
    assert len(cache) == 1


def test_get_missing_raises_and_counts_miss():
    cache = make_cache()
    with pytest.raises(ReproError):
        cache.get((1,), 0)
    assert cache.stats.misses == 1


def test_peek_does_not_touch_stats():
    cache = make_cache()
    cache.insert(make_chunk(), benefit=1.0)
    hits_before = cache.stats.hits
    assert cache.peek((1,), 0) is not None
    assert cache.peek((1,), 1) is None
    assert cache.stats.hits == hits_before


def test_oversized_chunk_rejected():
    cache = make_cache(capacity=30)
    outcome = cache.insert(make_chunk(cells=4), benefit=1.0)  # 40 bytes
    assert not outcome.inserted
    assert cache.stats.rejects == 1
    assert cache.used_bytes == 0


def test_eviction_frees_exactly_enough():
    cache = make_cache(capacity=100)
    for n in range(2):  # 2 x 40 bytes
        cache.insert(make_chunk(number=n), benefit=0.0)
    outcome = cache.insert(make_chunk(number=2, cells=3), benefit=0.0)
    assert outcome.inserted
    assert len(outcome.evicted) == 1
    assert cache.used_bytes <= 100


def test_rejected_insert_leaves_cache_untouched():
    cache = make_cache(capacity=100)
    for n in range(2):
        cache.insert(make_chunk(number=n), benefit=0.0)
    resident_before = set(cache.resident_keys())
    # Incoming cache-computed chunk may not evict backend-class chunks
    # under the two-level policy; with benefit policy use pinning instead.
    for entry in cache.entries():
        entry.pinned = True
    outcome = cache.insert(make_chunk(number=5, cells=10), benefit=9.0)
    assert not outcome.inserted
    assert set(cache.resident_keys()) == resident_before
    assert cache.used_bytes == 80


def test_reinsert_resident_refreshes_not_duplicates():
    cache = make_cache()
    cache.insert(make_chunk(), benefit=1.0)
    outcome = cache.insert(make_chunk(), benefit=5.0)
    assert not outcome.inserted
    assert len(cache) == 1
    assert cache.entry((1,), 0).benefit == 5.0


def test_empty_chunks_cached_for_free():
    cache = make_cache(capacity=50)
    empty = Chunk.empty((1,), 3, ndims=1)
    assert cache.insert(empty, benefit=0.0).inserted
    assert cache.contains((1,), 3)
    assert cache.used_bytes == 0


def test_explicit_evict():
    cache = make_cache()
    cache.insert(make_chunk(), benefit=1.0)
    chunk = cache.evict((1,), 0)
    assert chunk.number == 0
    assert not cache.contains((1,), 0)
    assert cache.used_bytes == 0
    with pytest.raises(ReproError):
        cache.evict((1,), 0)


def test_capacity_must_be_positive():
    with pytest.raises(ReproError):
        make_cache(capacity=0)


def test_pinned_entries_never_evicted():
    cache = make_cache(capacity=80)
    cache.insert(make_chunk(number=0), benefit=0.0)
    cache.entry((1,), 0).pinned = True
    cache.insert(make_chunk(number=1), benefit=0.0)
    # Inserting a third chunk can only evict the unpinned one.
    outcome = cache.insert(make_chunk(number=2), benefit=0.0)
    assert outcome.inserted
    assert cache.contains((1,), 0)
    assert not cache.contains((1,), 1)


def test_stats_counters():
    cache = make_cache(capacity=80)
    cache.insert(make_chunk(number=0), benefit=0.0)
    cache.insert(make_chunk(number=1), benefit=0.0)
    cache.insert(make_chunk(number=2), benefit=0.0)
    cache.get((1,), 2)
    assert cache.stats.inserts == 3
    assert cache.stats.evictions == 1
    assert cache.stats.hits == 1
