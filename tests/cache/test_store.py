"""Chunk store tests: byte accounting, atomic inserts, eviction plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.chunks import Chunk, ChunkOrigin
from repro.util.errors import ReproError

BPT = 10  # bytes per tuple used throughout these tests


def make_chunk(number=0, cells=4, level=(1,), origin=ChunkOrigin.BACKEND):
    return Chunk(
        level=level,
        number=number,
        coords=(np.arange(cells, dtype=np.int64),),
        values=np.ones(cells),
        counts=np.ones(cells, dtype=np.int64),
        origin=origin,
    )


def make_cache(capacity=100, policy="benefit"):
    return ChunkCache(capacity, make_policy(policy), BPT)


def test_insert_and_read_back():
    cache = make_cache()
    chunk = make_chunk()
    outcome = cache.insert(chunk, benefit=1.0)
    assert outcome.inserted and not outcome.evicted
    assert cache.contains((1,), 0)
    assert cache.get((1,), 0) is chunk
    assert cache.used_bytes == 40
    assert len(cache) == 1


def test_get_missing_raises_and_counts_miss():
    cache = make_cache()
    with pytest.raises(ReproError):
        cache.get((1,), 0)
    assert cache.stats.misses == 1


def test_peek_does_not_touch_stats():
    cache = make_cache()
    cache.insert(make_chunk(), benefit=1.0)
    hits_before = cache.stats.hits
    assert cache.peek((1,), 0) is not None
    assert cache.peek((1,), 1) is None
    assert cache.stats.hits == hits_before


def test_oversized_chunk_rejected():
    cache = make_cache(capacity=30)
    outcome = cache.insert(make_chunk(cells=4), benefit=1.0)  # 40 bytes
    assert not outcome.inserted
    assert cache.stats.rejects == 1
    assert cache.used_bytes == 0


def test_eviction_frees_exactly_enough():
    cache = make_cache(capacity=100)
    for n in range(2):  # 2 x 40 bytes
        cache.insert(make_chunk(number=n), benefit=0.0)
    outcome = cache.insert(make_chunk(number=2, cells=3), benefit=0.0)
    assert outcome.inserted
    assert len(outcome.evicted) == 1
    assert cache.used_bytes <= 100


def test_rejected_insert_leaves_cache_untouched():
    cache = make_cache(capacity=100)
    for n in range(2):
        cache.insert(make_chunk(number=n), benefit=0.0)
    resident_before = set(cache.resident_keys())
    # Incoming cache-computed chunk may not evict backend-class chunks
    # under the two-level policy; with benefit policy use pinning instead.
    for entry in cache.entries():
        entry.pinned = True
    outcome = cache.insert(make_chunk(number=5, cells=10), benefit=9.0)
    assert not outcome.inserted
    assert set(cache.resident_keys()) == resident_before
    assert cache.used_bytes == 80


def test_reinsert_resident_refreshes_not_duplicates():
    cache = make_cache()
    cache.insert(make_chunk(), benefit=1.0)
    outcome = cache.insert(make_chunk(), benefit=5.0)
    assert not outcome.inserted
    assert len(cache) == 1
    assert cache.entry((1,), 0).benefit == 5.0


def test_empty_chunks_cached_for_free():
    cache = make_cache(capacity=50)
    empty = Chunk.empty((1,), 3, ndims=1)
    assert cache.insert(empty, benefit=0.0).inserted
    assert cache.contains((1,), 3)
    assert cache.used_bytes == 0


def test_explicit_evict():
    cache = make_cache()
    cache.insert(make_chunk(), benefit=1.0)
    chunk = cache.evict((1,), 0)
    assert chunk.number == 0
    assert not cache.contains((1,), 0)
    assert cache.used_bytes == 0
    with pytest.raises(ReproError):
        cache.evict((1,), 0)


def test_capacity_must_be_positive():
    with pytest.raises(ReproError):
        make_cache(capacity=0)


def test_pinned_entries_never_evicted():
    cache = make_cache(capacity=80)
    cache.insert(make_chunk(number=0), benefit=0.0)
    cache.entry((1,), 0).pinned = True
    cache.insert(make_chunk(number=1), benefit=0.0)
    # Inserting a third chunk can only evict the unpinned one.
    outcome = cache.insert(make_chunk(number=2), benefit=0.0)
    assert outcome.inserted
    assert cache.contains((1,), 0)
    assert not cache.contains((1,), 1)


def test_stats_counters():
    cache = make_cache(capacity=80)
    cache.insert(make_chunk(number=0), benefit=0.0)
    cache.insert(make_chunk(number=1), benefit=0.0)
    cache.insert(make_chunk(number=2), benefit=0.0)
    cache.get((1,), 2)
    assert cache.stats.inserts == 3
    assert cache.stats.evictions == 1
    assert cache.stats.hits == 1


def test_replace_many_swaps_payload_preserving_entry_state():
    cache = make_cache(capacity=200)
    cache.insert(make_chunk(number=0), benefit=3.5)
    entry = cache.entry((1,), 0)
    entry.pinned = True
    clock_before = entry.clock
    patched = make_chunk(number=0, cells=4)
    patched.values[:] = 7.0
    evicted = cache.replace_many([(((1,), 0), patched)])
    assert evicted == []
    entry = cache.entry((1,), 0)
    assert entry.chunk is patched
    assert entry.benefit == 3.5
    assert entry.pinned
    assert entry.resident
    assert entry.clock == clock_before
    assert cache.get((1,), 0).values[0] == 7.0


def test_replace_many_adjusts_byte_accounting():
    cache = make_cache(capacity=200)
    cache.insert(make_chunk(number=0, cells=4), benefit=1.0)  # 40 bytes
    assert cache.used_bytes == 40
    cache.replace_many([(((1,), 0), make_chunk(number=0, cells=6))])
    assert cache.used_bytes == 60
    cache.replace_many([(((1,), 0), make_chunk(number=0, cells=2))])
    assert cache.used_bytes == 20


def test_replace_many_rejects_missing_entry():
    cache = make_cache()
    with pytest.raises(ReproError, match="not cached"):
        cache.replace_many([(((1,), 0), make_chunk(number=0))])


def test_replace_many_rejects_mismatched_key():
    cache = make_cache()
    cache.insert(make_chunk(number=0), benefit=1.0)
    with pytest.raises(ReproError, match="does not match"):
        cache.replace_many([(((1,), 0), make_chunk(number=1))])


def test_replace_many_overflow_evicts_unpinned_victims():
    # Growing a patched chunk past capacity reclaims space through the
    # ordinary victim sweep; the patched (pinned) entry itself survives.
    cache = make_cache(capacity=100)
    cache.insert(make_chunk(number=0, cells=4), benefit=0.0)
    cache.insert(make_chunk(number=1, cells=4), benefit=0.0)
    cache.entry((1,), 0).pinned = True
    grown = make_chunk(number=0, cells=9)  # 40 -> 90 bytes
    evicted = cache.replace_many([(((1,), 0), grown)])
    assert [c.number for c in evicted] == [1]
    assert cache.contains((1,), 0)
    assert cache.used_bytes <= 100


def test_replace_many_all_pinned_runs_over_budget():
    cache = make_cache(capacity=100)
    cache.insert(make_chunk(number=0, cells=4), benefit=0.0)
    cache.insert(make_chunk(number=1, cells=4), benefit=0.0)
    for n in range(2):
        cache.entry((1,), n).pinned = True
    evicted = cache.replace_many(
        [(((1,), 0), make_chunk(number=0, cells=9))]
    )
    assert evicted == []
    assert cache.used_bytes == 130  # temporarily over budget, by design
    assert cache.contains((1,), 0) and cache.contains((1,), 1)
