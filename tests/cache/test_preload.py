"""Pre-load level selection tests."""

from __future__ import annotations

import pytest

from repro.cache.preload import choose_preload_level
from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


@pytest.fixture(scope="module")
def sizes(schema):
    return SizeEstimator(schema, total_base_tuples=16)


def test_base_level_chosen_when_everything_fits(schema, sizes):
    capacity = int(sizes.level_bytes(schema.base_level)) + 100
    assert choose_preload_level(schema, sizes, capacity) == schema.base_level


def test_smaller_cache_gets_smaller_level(schema, sizes):
    capacity = int(sizes.level_bytes(schema.base_level) * 0.5)
    level = choose_preload_level(schema, sizes, capacity)
    assert level is not None
    assert level != schema.base_level
    assert sizes.level_bytes(level) <= capacity


def test_apex_always_fits(schema, sizes):
    level = choose_preload_level(schema, sizes, capacity_bytes=5 * 20)
    assert level is not None
    assert sizes.level_bytes(level) <= 100


def test_nothing_fits(schema, sizes):
    assert choose_preload_level(schema, sizes, capacity_bytes=1) is None


def test_maximises_descendants(schema, sizes):
    """Among the fitting levels, the chosen one has the most descendants."""
    capacity = int(sizes.level_bytes(schema.base_level) * 0.7)
    chosen = choose_preload_level(schema, sizes, capacity)
    best = max(
        (
            schema.descendant_count(level)
            for level in schema.all_levels()
            if sizes.level_bytes(level) <= capacity
        ),
    )
    assert schema.descendant_count(chosen) == best


def test_headroom_shrinks_budget(schema, sizes):
    capacity = int(sizes.level_bytes(schema.base_level)) + 100
    full = choose_preload_level(schema, sizes, capacity, headroom=1.0)
    tight = choose_preload_level(schema, sizes, capacity, headroom=0.1)
    assert full == schema.base_level
    assert tight != schema.base_level
