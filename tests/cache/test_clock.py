"""CLOCK ring tests."""

from __future__ import annotations

import itertools

import numpy as np

from repro.cache.replacement.base import CLOCK_CAP, clock_weight
from repro.cache.replacement.clock import ClockRing
from repro.cache.store import CacheEntry
from repro.chunks import Chunk


def entry(number, clock=0.0, pinned=False):
    chunk = Chunk(
        level=(1,),
        number=number,
        coords=(np.array([0]),),
        values=np.array([1.0]),
        counts=np.array([1]),
    )
    e = CacheEntry(chunk=chunk, benefit=0.0, size_bytes=10)
    e.clock = clock
    e.pinned = pinned
    return e


def test_zero_clock_victims_in_ring_order():
    ring = ClockRing()
    entries = [entry(n) for n in range(3)]
    for e in entries:
        ring.add(e)
    victims = list(itertools.islice(ring.sweep(), 3))
    assert [v.chunk.number for v in victims] == [0, 1, 2]


def test_clock_decay_survives_sweeps():
    ring = ClockRing()
    cheap, dear = entry(0, clock=0.0), entry(1, clock=2.0)
    ring.add(cheap)
    ring.add(dear)
    victims = list(ring.sweep())
    # Cheap goes first; dear only after its clock decays to zero.
    assert [v.chunk.number for v in victims] == [0, 1]
    assert dear.clock <= 0


def test_each_entry_yielded_once():
    ring = ClockRing()
    entries = [entry(n) for n in range(4)]
    for e in entries:
        ring.add(e)
    victims = list(ring.sweep())
    assert len(victims) == 4
    assert len({id(v) for v in victims}) == 4


def test_pinned_never_yielded():
    ring = ClockRing()
    ring.add(entry(0, pinned=True))
    ring.add(entry(1))
    victims = list(ring.sweep())
    assert [v.chunk.number for v in victims] == [1]


def test_empty_ring_sweep_terminates():
    assert list(ClockRing().sweep()) == []


def test_nonresident_entries_compacted():
    ring = ClockRing()
    entries = [entry(n) for n in range(4)]
    for e in entries:
        ring.add(e)
    entries[1].resident = False
    entries[2].resident = False
    victims = list(ring.sweep())
    assert [v.chunk.number for v in victims] == [0, 3]
    assert len(ring) == 2


def test_hand_advances_between_sweeps():
    ring = ClockRing()
    entries = [entry(n) for n in range(3)]
    for e in entries:
        ring.add(e)
    first = next(ring.sweep())
    assert first.chunk.number == 0
    # Next sweep starts after the hand, so entry 1 goes first.
    second = next(ring.sweep())
    assert second.chunk.number == 1


def test_clock_weight_monotone_and_capped():
    assert clock_weight(0.0) == 0.0
    assert clock_weight(-1.0) == 0.0
    assert clock_weight(1.0) < clock_weight(100.0)
    assert clock_weight(1e30) == CLOCK_CAP


def test_clock_weight_curve_pinned():
    """Exact points of the log2(1 + benefit) curve and its cap — the
    single source of truth in ``replacement/base`` that both ring
    policies must keep deriving their tick values from."""
    assert CLOCK_CAP == 48.0
    assert clock_weight(1.0) == 1.0
    assert clock_weight(3.0) == 2.0
    assert clock_weight(2.0**20 - 1.0) == 20.0
    assert clock_weight(2.0**60) == CLOCK_CAP


def test_policies_share_the_weight_curve():
    """Scalar ``on_insert`` and the batched ``on_insert_many`` of both
    ring policies assign the same base-curve clock values."""
    from repro.cache.replacement import make_policy

    benefits = [0.0, 1.0, 3.0, 250.0, 2.0**60]
    for name in ("benefit", "two_level"):
        scalar_policy = make_policy(name)
        batched_policy = make_policy(name)
        scalar_entries, batched_entries = [], []
        for number, benefit in enumerate(benefits):
            for bucket in (scalar_entries, batched_entries):
                e = entry(number)
                e.benefit = benefit
                bucket.append(e)
        for e in scalar_entries:
            scalar_policy.on_insert(e)
        batched_policy.on_insert_many(batched_entries)
        for scalar_e, batched_e in zip(scalar_entries, batched_entries):
            assert (
                scalar_e.clock
                == batched_e.clock
                == clock_weight(scalar_e.benefit)
            ), name
