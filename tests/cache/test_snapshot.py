"""Cache snapshot save/restore tests."""

from __future__ import annotations

import pytest

from repro import AggregateCache, Query
from repro.cache.snapshot import load_cache_snapshot, save_cache_snapshot
from repro.util.errors import ReproError
from tests.helpers import oracle_computable


@pytest.fixture
def warm_manager(tiny_schema, tiny_backend):
    manager = AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    # Warm with a couple of computed chunks on top of the preload.
    manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    manager.query(Query.full_level(tiny_schema, (1, 1, 0)))
    return manager


def test_roundtrip_restores_contents(warm_manager, tiny_schema, tiny_backend, tmp_path):
    path = tmp_path / "cache.npz"
    saved = save_cache_snapshot(warm_manager, path)
    assert saved == len(warm_manager.cache)

    fresh = AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        preload=False,
    )
    restored = load_cache_snapshot(fresh, path)
    assert restored == saved
    assert set(fresh.cache.resident_keys()) == set(
        warm_manager.cache.resident_keys()
    )


def test_restored_strategy_state_is_consistent(
    warm_manager, tiny_schema, tiny_backend, tmp_path
):
    path = tmp_path / "cache.npz"
    save_cache_snapshot(warm_manager, path)
    fresh = AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        strategy="vcm",
        preload=False,
    )
    load_cache_snapshot(fresh, path)
    cached = set(fresh.cache.resident_keys())
    for level in tiny_schema.all_levels():
        for number in range(tiny_schema.num_chunks(level)):
            expected = oracle_computable(tiny_schema, cached, level, number)
            assert (
                fresh.strategy.find(level, number) is not None
            ) == expected


def test_restore_into_smaller_cache_skips_gracefully(
    warm_manager, tiny_schema, tiny_backend, tmp_path
):
    path = tmp_path / "cache.npz"
    saved = save_cache_snapshot(warm_manager, path)
    small = AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=100,
        strategy="vcmc",
        preload=False,
    )
    restored = load_cache_snapshot(small, path)
    assert 0 <= restored <= saved
    assert small.cache.used_bytes <= 100


def test_queries_work_after_restore(
    warm_manager, tiny_schema, tiny_backend, tiny_facts, tmp_path
):
    path = tmp_path / "cache.npz"
    save_cache_snapshot(warm_manager, path)
    fresh = AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        preload=False,
    )
    load_cache_snapshot(fresh, path)
    result = fresh.query(Query.full_level(tiny_schema, (0, 0, 0)))
    assert result.complete_hit
    assert result.total_value() == pytest.approx(tiny_facts.total())


def test_stale_snapshot_rejected_after_append(
    tiny_schema, tiny_facts, tmp_path
):
    """A snapshot saved before a warehouse append must not silently
    restore over the grown backend: its chunks describe the old fact
    table and would serve stale aggregates forever."""
    from repro import BackendDatabase, generate_fact_table

    backend = BackendDatabase(tiny_schema, tiny_facts)
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    manager.query(Query.full_level(tiny_schema, (1, 1, 0)))
    path = tmp_path / "cache.npz"
    save_cache_snapshot(manager, path)

    delta = generate_fact_table(tiny_schema, num_tuples=30, seed=9)
    manager.refresh_from_backend(delta)

    fresh = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        preload=False,
    )
    with pytest.raises(ReproError, match="refresh generation"):
        load_cache_snapshot(fresh, path)
    assert len(fresh.cache) == 0


def test_snapshot_roundtrip_after_append(tiny_schema, tiny_facts, tmp_path):
    """A snapshot taken AFTER the append restores cleanly into a manager
    over the same (appended) backend: the generations match."""
    from repro import BackendDatabase, generate_fact_table

    backend = BackendDatabase(tiny_schema, tiny_facts)
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    delta = generate_fact_table(tiny_schema, num_tuples=30, seed=9)
    manager.refresh_from_backend(delta)
    manager.query(Query.full_level(tiny_schema, (1, 1, 0)))
    path = tmp_path / "cache.npz"
    saved = save_cache_snapshot(manager, path)

    fresh = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        preload=False,
    )
    restored = load_cache_snapshot(fresh, path)
    assert restored == saved
    assert set(fresh.cache.resident_keys()) == set(
        manager.cache.resident_keys()
    )


def test_dimension_mismatch_rejected(warm_manager, tmp_path):
    from repro import BackendDatabase, generate_fact_table
    from repro.schema import CubeSchema, Dimension

    path = tmp_path / "cache.npz"
    save_cache_snapshot(warm_manager, path)
    other_schema = CubeSchema(
        [Dimension.flat("A", 4, 2), Dimension.flat("B", 4, 2)]
    )
    facts = generate_fact_table(other_schema, num_tuples=10, seed=1)
    other = AggregateCache(
        other_schema,
        BackendDatabase(other_schema, facts),
        capacity_bytes=1 << 20,
        preload=False,
    )
    with pytest.raises(ReproError, match="dimensions"):
        load_cache_snapshot(other, path)
