"""Cost-based cache-vs-backend optimizer tests (paper Section 5.2).

VCMC maintains the least aggregation cost per chunk; the optimizer uses
it to send a computable-but-expensive chunk to the backend instead.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    CostModel,
    Query,
    generate_fact_table,
)
from repro.schema import apb_tiny_schema
from tests.helpers import direct_aggregate


@pytest.fixture
def schema():
    return apb_tiny_schema()


@pytest.fixture
def facts(schema):
    return generate_fact_table(schema, num_tuples=300, seed=42)


def make_manager(schema, facts, cost_model, **kwargs):
    backend = BackendDatabase(schema, facts, cost_model)
    return AggregateCache(
        schema,
        backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        **kwargs,
    )


def cheap_backend_model():
    """A cost model where the backend is nearly free but aggregation is
    very expensive — the regime where the optimizer must redirect."""
    return CostModel(
        connection_overhead_ms=0.001,
        scan_ms_per_tuple=0.0001,
        transfer_ms_per_tuple=0.0001,
        cache_agg_ms_per_tuple=100.0,
    )


def test_optimizer_redirects_when_backend_cheaper(schema, facts):
    manager = make_manager(
        schema, facts, cheap_backend_model(), use_cost_optimizer=True
    )
    result = manager.query(Query.full_level(schema, schema.apex_level))
    assert manager.optimizer_redirects >= 1
    assert result.from_backend >= 1
    assert not result.complete_hit
    # Correctness is untouched either way.
    truth = direct_aggregate(facts, schema.apex_level)
    assert result.total_value() == pytest.approx(sum(truth.values()))


def test_optimizer_keeps_cache_when_aggregation_cheaper(schema, facts):
    manager = make_manager(
        schema, facts, CostModel(), use_cost_optimizer=True
    )
    result = manager.query(Query.full_level(schema, schema.apex_level))
    assert manager.optimizer_redirects == 0
    assert result.complete_hit


def test_optimizer_off_by_default(schema, facts):
    manager = make_manager(schema, facts, cheap_backend_model())
    result = manager.query(Query.full_level(schema, schema.apex_level))
    # Without the optimizer the computable chunk is aggregated regardless.
    assert manager.optimizer_redirects == 0
    assert result.complete_hit


def test_optimizer_never_touches_direct_hits(schema, facts):
    manager = make_manager(
        schema, facts, cheap_backend_model(), use_cost_optimizer=True
    )
    base_query = Query.full_level(schema, schema.base_level)
    result = manager.query(base_query)
    assert result.direct_hits == base_query.num_chunks
    assert manager.optimizer_redirects == 0


def test_optimizer_works_with_plan_walking_strategies(schema, facts):
    """ESM has no maintained costs; the gate walks the plan instead."""
    backend = BackendDatabase(schema, facts, cheap_backend_model())
    manager = AggregateCache(
        schema,
        backend,
        capacity_bytes=1 << 20,
        strategy="esm",
        use_cost_optimizer=True,
    )
    result = manager.query(Query.full_level(schema, schema.apex_level))
    assert manager.optimizer_redirects >= 1
    assert result.from_backend >= 1
