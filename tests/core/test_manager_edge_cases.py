"""Manager edge cases: degenerate regions, tiny caches, empty data."""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    CostModel,
    Query,
    generate_fact_table,
)
from repro.schema import apb_tiny_schema


@pytest.fixture
def schema():
    return apb_tiny_schema()


def test_query_over_region_with_no_facts(schema):
    facts = generate_fact_table(schema, num_tuples=1, seed=5)
    backend = BackendDatabase(schema, facts)
    manager = AggregateCache(
        schema, backend, capacity_bytes=1 << 20, preload=False
    )
    # The lone fact occupies one base cell; query a disjoint chunk.
    occupied = backend.base_chunk_numbers()[0]
    other = next(
        n
        for n in range(schema.num_chunks(schema.base_level))
        if n != occupied
    )
    result = manager.query(Query.single_chunk(schema, schema.base_level, other))
    assert result.total_value() == 0.0
    assert result.chunks[0].is_empty
    # Empty chunks are cached: the repeat is a complete hit.
    repeat = manager.query(
        Query.single_chunk(schema, schema.base_level, other)
    )
    assert repeat.complete_hit


def test_single_cell_cube():
    from repro.schema import CubeSchema, Dimension

    schema = CubeSchema([Dimension.flat("A", 1, 1)])
    facts = generate_fact_table(schema, num_tuples=5, seed=1)
    backend = BackendDatabase(schema, facts)
    manager = AggregateCache(schema, backend, capacity_bytes=1 << 10)
    result = manager.query(Query.full_level(schema, (1,)))
    assert result.total_value() == pytest.approx(facts.total())


def test_capacity_smaller_than_any_chunk(tiny_facts, tiny_backend):
    manager = AggregateCache(
        tiny_facts.schema,
        tiny_backend,
        capacity_bytes=1,  # nothing fits
        strategy="vcmc",
    )
    assert manager.preloaded_level is None
    result = manager.query(
        Query.full_level(tiny_facts.schema, tiny_facts.schema.apex_level)
    )
    # Still answers correctly, straight from the backend.
    assert result.total_value() == pytest.approx(tiny_facts.total())
    assert not result.complete_hit
    assert len(manager.cache) == 0


def test_same_query_twice_in_a_row_stable(tiny_schema, tiny_backend, tiny_facts):
    manager = AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy="vcmc"
    )
    query = Query.full_level(tiny_schema, (1, 0, 1))
    first = manager.query(query)
    second = manager.query(query)
    third = manager.query(query)
    assert (
        first.total_value()
        == second.total_value()
        == third.total_value()
    )
    assert third.direct_hits == query.num_chunks


def test_interleaved_strategies_share_backend(tiny_schema, tiny_backend, tiny_facts):
    """Multiple managers over one backend don't interfere."""
    managers = [
        AggregateCache(
            tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy=s
        )
        for s in ("esm", "vcm", "vcmc")
    ]
    query = Query.full_level(tiny_schema, (0, 1, 0))
    results = [m.query(query).total_value() for m in managers]
    assert results[0] == pytest.approx(results[1])
    assert results[1] == pytest.approx(results[2])


def test_zero_connection_overhead_model(tiny_schema, tiny_facts):
    backend = BackendDatabase(
        tiny_schema,
        tiny_facts,
        CostModel(connection_overhead_ms=0.0, scan_ms_per_tuple=0.0,
                  transfer_ms_per_tuple=0.0),
    )
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, preload=False
    )
    result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    assert result.total_value() == pytest.approx(tiny_facts.total())


def test_state_updates_reported(tiny_schema, tiny_backend):
    manager = AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        strategy="vcm",
        preload=False,
    )
    result = manager.query(Query.full_level(tiny_schema, tiny_schema.base_level))
    # Every fetched base chunk entered the cache: at least one count
    # update each.
    assert result.state_updates >= result.from_backend
