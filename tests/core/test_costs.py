"""Cost store maintenance tests: VCMC's Cost must equal the true least cost."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostStore
from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from tests.helpers import oracle_min_cost


@pytest.fixture
def schema():
    return apb_tiny_schema()


@pytest.fixture
def sizes(schema):
    return SizeEstimator(schema, total_base_tuples=14)


def all_keys(schema):
    return [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]


def assert_costs_match_oracle(schema, sizes, store, cached):
    for level, number in all_keys(schema):
        expected = oracle_min_cost(schema, sizes, cached, level, number)
        actual = store.cost(level, number)
        if math.isinf(expected):
            assert math.isinf(actual), (level, number)
        else:
            assert actual == pytest.approx(expected), (level, number)


def test_empty_cache_all_infinite(schema, sizes):
    store = CostStore(schema, sizes)
    for level, number in all_keys(schema):
        assert not store.is_computable(level, number)
        assert store.best_parent_level(level, number) is None


def test_cached_chunk_costs_zero(schema, sizes):
    store = CostStore(schema, sizes)
    store.on_insert((1, 1, 1), 0)
    assert store.cost((1, 1, 1), 0) == 0.0
    assert store.is_cached((1, 1, 1), 0)
    assert store.best_parent_level((1, 1, 1), 0) is None


def test_full_base_costs_match_oracle(schema, sizes):
    store = CostStore(schema, sizes)
    cached = set()
    base = schema.base_level
    for n in range(schema.num_chunks(base)):
        store.on_insert(base, n)
        cached.add((base, n))
    assert_costs_match_oracle(schema, sizes, store, cached)


def test_best_parent_is_argmin(schema, sizes):
    """BestParent must point at a parent achieving the stored cost."""
    store = CostStore(schema, sizes)
    base = schema.base_level
    cached = set()
    for n in range(schema.num_chunks(base)):
        store.on_insert(base, n)
        cached.add((base, n))
    for level, number in all_keys(schema):
        if store.is_cached(level, number) or not store.is_computable(
            level, number
        ):
            continue
        parent = store.best_parent_level(level, number)
        numbers = schema.get_parent_chunk_numbers(level, number, parent)
        via = sum(
            store.cost(parent, int(n)) + sizes.chunk_tuples(parent, int(n))
            for n in numbers
        )
        assert via == pytest.approx(store.cost(level, number))


def test_inserting_nearer_ancestor_lowers_cost(schema, sizes):
    """Example 5 regime: a more immediate ancestor gives a cheaper path."""
    store = CostStore(schema, sizes)
    base = schema.base_level
    for n in range(schema.num_chunks(base)):
        store.on_insert(base, n)
    apex_cost_from_base = store.cost(schema.apex_level, 0)
    mid = (0, 1, 1)  # immediate parent of the apex on Product
    for n in range(schema.num_chunks(mid)):
        store.on_insert(mid, n)
    assert store.cost(schema.apex_level, 0) < apex_cost_from_base
    assert store.best_parent_level(schema.apex_level, 0) == (1, 0, 0) or (
        store.cost(schema.apex_level, 0) > 0
    )


def test_evict_restores_previous_costs(schema, sizes):
    store = CostStore(schema, sizes)
    base = schema.base_level
    cached = set()
    for n in range(schema.num_chunks(base)):
        store.on_insert(base, n)
        cached.add((base, n))
    snapshot = {
        key: store.cost(*key) for key in all_keys(schema)
    }
    mid = (1, 1, 0)
    store.on_insert(mid, 0)
    store.on_evict(mid, 0)
    for key in all_keys(schema):
        after = store.cost(*key)
        assert after == pytest.approx(snapshot[key])
    assert_costs_match_oracle(schema, sizes, store, cached)


def test_evicting_base_chunk_breaks_descendants(schema, sizes):
    store = CostStore(schema, sizes)
    base = schema.base_level
    cached = set()
    for n in range(schema.num_chunks(base)):
        store.on_insert(base, n)
        cached.add((base, n))
    victim = (base, 0)
    store.on_evict(*victim)
    cached.discard(victim)
    assert_costs_match_oracle(schema, sizes, store, cached)
    assert not store.is_computable(schema.apex_level, 0)


def test_evict_uncached_raises(schema, sizes):
    store = CostStore(schema, sizes)
    with pytest.raises(ReproError):
        store.on_evict(schema.base_level, 0)


def test_update_counters(schema, sizes):
    store = CostStore(schema, sizes)
    updates = store.on_insert(schema.apex_level, 0)
    assert updates == 1
    assert store.total_updates == 1


@settings(max_examples=30, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(0, 10_000)),
        min_size=1,
        max_size=20,
    )
)
def test_costs_match_oracle_under_random_ops(operations):
    """The maintained Cost equals the brute-force least cost after any
    interleaving of inserts and evictions."""
    schema = apb_tiny_schema()
    sizes = SizeEstimator(schema, total_base_tuples=14)
    keys = [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]
    store = CostStore(schema, sizes)
    cached: set = set()
    for is_insert, pick in operations:
        if is_insert:
            candidates = [k for k in keys if k not in cached]
        else:
            candidates = sorted(cached)
        if not candidates:
            continue
        key = candidates[pick % len(candidates)]
        if is_insert:
            store.on_insert(*key)
            cached.add(key)
        else:
            store.on_evict(*key)
            cached.discard(key)
    assert_costs_match_oracle(schema, sizes, store, cached)
