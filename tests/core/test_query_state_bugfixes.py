"""Regressions for the query-path cache-state fixes.

* Phase 4 must apply group reinforcement BEFORE admissions: an insert can
  evict the very leaves that were just aggregated, and the old
  insert-first order both lost those reinforcements silently and let the
  victim sweep pass over un-reinforced clock values.
* ``range_query`` must not mutate the ``QueryResult`` that ``query()``
  already logged and emitted — slicing happens on a copy.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    CostModel,
    Query,
)
from repro.core.manager import AggregateCache as ManagerClass


def make_manager(tiny_schema, tiny_facts, **kwargs):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    kwargs.setdefault("capacity_bytes", int(backend.base_size_bytes * 1.2))
    kwargs.setdefault("strategy", "vcmc")
    kwargs.setdefault("policy", "two_level")
    return AggregateCache(tiny_schema, backend, **kwargs)


def aggregating_level(manager):
    """A level whose chunks are answered by aggregation (non-leaf plan)."""
    for level in manager.schema.all_levels():
        plan = manager.strategy.find(level, 0)
        if plan is not None and not plan.is_leaf:
            return level
    pytest.skip("no aggregation-answered level in this configuration")


def test_reinforcement_applied_before_admissions(tiny_schema, tiny_facts):
    manager = make_manager(tiny_schema, tiny_facts)
    level = aggregating_level(manager)

    calls = []
    cache = manager.cache
    original_reinforce = cache.reinforce
    original_insert = cache.insert
    original_insert_many = cache.insert_many
    cache.reinforce = lambda *a, **k: (
        calls.append("reinforce"),
        original_reinforce(*a, **k),
    )[1]
    cache.insert = lambda *a, **k: (
        calls.append("insert"),
        original_insert(*a, **k),
    )[1]
    cache.insert_many = lambda *a, **k: (
        calls.append("insert"),
        original_insert_many(*a, **k),
    )[1]
    try:
        result = manager.query(Query.full_level(tiny_schema, level))
    finally:
        del cache.reinforce
        del cache.insert
        del cache.insert_many

    assert result.aggregated > 0, "query must exercise the aggregate path"
    assert "reinforce" in calls and "insert" in calls
    last_reinforce = max(
        i for i, name in enumerate(calls) if name == "reinforce"
    )
    first_insert = min(i for i, name in enumerate(calls) if name == "insert")
    assert last_reinforce < first_insert, (
        "phase 4 must reinforce aggregated leaves before admissions can "
        f"evict them (saw {calls})"
    )
    # Sequentially nothing can vanish between aggregation and
    # reinforcement, so no reinforcement may be reported skipped.
    assert result.reinforcements_skipped == 0


def test_reinforce_reports_skipped_for_evicted_leaves(
    tiny_schema, tiny_facts
):
    manager = make_manager(tiny_schema, tiny_facts)
    resident = manager.cache.resident_keys()
    assert resident
    present = resident[0]
    absent = None
    for level in tiny_schema.all_levels():
        for number in range(tiny_schema.num_chunks(level)):
            if (level, number) not in set(resident):
                absent = (level, number)
                break
        if absent:
            break
    assert absent is not None
    applied, skipped = manager.cache.reinforce([present, absent], 5.0)
    assert applied == 1
    assert skipped == 1


def test_range_query_does_not_mutate_logged_result(tiny_schema, tiny_facts):
    manager = make_manager(tiny_schema, tiny_facts, keep_log=True)
    level = tiny_schema.base_level

    inner_results = []
    original_query = ManagerClass.query

    def capturing_query(self, query):
        result = original_query(self, query)
        inner_results.append(result)
        return result

    ManagerClass.query = capturing_query
    try:
        # Sub-cardinality ranges so slicing genuinely drops cells.
        ranges = tuple(
            (0, max(1, dim.cardinality(l) // 2))
            for dim, l in zip(tiny_schema.dimensions, level)
        )
        sliced = manager.range_query(level, ranges)
    finally:
        ManagerClass.query = original_query

    assert len(inner_results) == 1
    inner = inner_results[0]
    # The returned result is a copy: the logged/emitted inner result still
    # holds the full covering chunks.
    assert sliced is not inner
    assert sliced.complete_hit == inner.complete_hit
    inner_tuples = sum(c.size_tuples for c in inner.chunks)
    sliced_tuples = sum(c.size_tuples for c in sliced.chunks)
    assert sliced_tuples < inner_tuples, (
        "slicing must have restricted the cells for this regression to "
        "be meaningful"
    )
    # The audit trail (query log) describes the covering fetch, which
    # matches the inner result — not the sliced copy.
    record = manager.query_log[-1]
    assert record.num_chunks == inner.query.num_chunks
    assert record.tuples_aggregated == inner.tuples_aggregated


def test_range_query_cached_chunks_unharmed(tiny_schema, tiny_facts):
    """After a sub-chunk range query, re-querying the full chunks returns
    the complete cells — the cache was not poisoned by sliced copies."""
    manager = make_manager(tiny_schema, tiny_facts)
    level = tiny_schema.base_level
    full = Query.full_level(tiny_schema, level)
    before = manager.query(full).total_value()
    ranges = tuple(
        (0, max(1, dim.cardinality(l) // 2))
        for dim, l in zip(tiny_schema.dimensions, level)
    )
    manager.range_query(level, ranges)
    after = manager.query(full).total_value()
    assert after == pytest.approx(before)
