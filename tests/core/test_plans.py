"""Plan tree tests."""

from __future__ import annotations

import pytest

from repro.core.plans import PlanNode
from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def build_two_level_plan(schema):
    base = schema.base_level
    mid = (1, 1, 1)
    apex = schema.apex_level
    mid_nodes = []
    for number in range(schema.num_chunks(mid)):
        covering = schema.get_parent_chunk_numbers(mid, number, base)
        leaves = tuple(PlanNode.leaf(base, int(n)) for n in covering)
        mid_nodes.append(PlanNode.aggregate(mid, number, base, leaves))
    return PlanNode.aggregate(apex, 0, mid, tuple(mid_nodes))


def test_leaf_properties():
    leaf = PlanNode.leaf((1, 1), 3)
    assert leaf.is_leaf
    assert leaf.num_nodes == 1
    assert leaf.num_aggregations == 0
    assert list(leaf.leaves()) == [leaf]


def test_tree_traversal_counts(schema):
    plan = build_two_level_plan(schema)
    num_mid = schema.num_chunks((1, 1, 1))
    num_base = schema.num_chunks(schema.base_level)
    assert plan.num_nodes == 1 + num_mid + num_base
    assert plan.num_aggregations == 1 + num_mid
    assert sum(1 for _ in plan.leaves()) == num_base


def test_post_order(schema):
    plan = build_two_level_plan(schema)
    nodes = list(plan.iter_nodes())
    assert nodes[-1] is plan
    assert nodes[0].is_leaf


def test_estimated_cost_sums_inputs(schema):
    sizes = SizeEstimator(schema, total_base_tuples=16)
    plan = build_two_level_plan(schema)
    base, mid = schema.base_level, (1, 1, 1)
    expected = sum(
        sizes.chunk_tuples(base, n) for n in range(schema.num_chunks(base))
    ) + sum(
        sizes.chunk_tuples(mid, n) for n in range(schema.num_chunks(mid))
    )
    assert plan.estimated_cost(sizes) == pytest.approx(expected)
    assert PlanNode.leaf(base, 0).estimated_cost(sizes) == 0.0


def test_describe_readable(schema):
    plan = build_two_level_plan(schema)
    text = plan.describe()
    assert "agg" in text and "read" in text
    assert str(schema.base_level) in text
