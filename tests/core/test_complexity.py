"""Quantitative complexity checks tying the code to the paper's analysis.

The paper argues about *visit counts*, not just wall time: ESM's
empty-cache cost is the lattice walk census, VCM rejects in exactly one
visit and accepts in exactly plan-size visits, and ESMC's all-paths
search dominates everything.  These tests pin those counts exactly.
"""

from __future__ import annotations

import pytest

from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.core.sizes import SizeEstimator
from repro.core.strategies import make_strategy
from repro.schema import apb_tiny_schema
from repro.schema.lattice import count_walks_to_base, paths_to_base


@pytest.fixture
def schema():
    return apb_tiny_schema()


@pytest.fixture
def sizes(schema):
    return SizeEstimator(schema, total_base_tuples=14)


@pytest.fixture
def empty_cache_(schema):
    return ChunkCache(1 << 20, make_policy("benefit"), schema.bytes_per_tuple)


def load_base(schema, cache, strategies):
    from repro import BackendDatabase, generate_fact_table

    facts = generate_fact_table(schema, num_tuples=100, seed=1)
    backend = BackendDatabase(schema, facts)
    for n in range(schema.num_chunks(schema.base_level)):
        chunk = backend.compute_chunk(schema.base_level, n)
        cache.insert(chunk, benefit=1.0)
        for strategy in strategies:
            strategy.on_insert(schema.base_level, n)


def test_esm_empty_cache_visits_equal_walk_census(schema, sizes, empty_cache_):
    """On an empty cache ESM's recursion count is exactly the number of
    downward lattice walks from the query level (the break-on-first-
    failure argument in the module docstring of esm.py)."""
    esm = make_strategy("esm", schema, empty_cache_, sizes)
    for level in schema.all_levels():
        esm.find(level, 0)
        assert esm.last_find_visits == count_walks_to_base(
            level, schema.heights
        ), level


def test_esmc_empty_cache_visits_equal_esm(schema, sizes, empty_cache_):
    """With nothing cached, ESMC's search tree equals ESM's (both fail on
    the first chunk of every parent)."""
    esm = make_strategy("esm", schema, empty_cache_, sizes)
    esmc = make_strategy("esmc", schema, empty_cache_, sizes)
    for level in schema.all_levels():
        esm.find(level, 0)
        esmc.find(level, 0)
        assert esm.last_find_visits == esmc.last_find_visits


def test_vcm_reject_is_exactly_one_visit(schema, sizes, empty_cache_):
    vcm = make_strategy("vcm", schema, empty_cache_, sizes)
    vcmc = make_strategy("vcmc", schema, empty_cache_, sizes)
    for level in schema.all_levels():
        vcm.find(level, 0)
        vcmc.find(level, 0)
        assert vcm.last_find_visits == 1
        assert vcmc.last_find_visits == 1


def test_vcm_accept_visits_equal_plan_size(schema, sizes, empty_cache_):
    vcm = make_strategy("vcm", schema, empty_cache_, sizes)
    load_base(schema, empty_cache_, [vcm])
    for level in schema.all_levels():
        for number in range(schema.num_chunks(level)):
            plan = vcm.find(level, number)
            assert plan is not None
            assert vcm.last_find_visits == plan.num_nodes


def test_vcmc_accept_visits_equal_plan_size(schema, sizes, empty_cache_):
    vcmc = make_strategy("vcmc", schema, empty_cache_, sizes)
    load_base(schema, empty_cache_, [vcmc])
    for level in schema.all_levels():
        plan = vcmc.find(level, 0)
        assert vcmc.last_find_visits == plan.num_nodes


def test_esm_warm_visits_bounded_by_first_path(schema, sizes, empty_cache_):
    """With the base cached ESM succeeds on its first path: visits are
    bounded by the chunks along one refinement chain (no factorial)."""
    esm = make_strategy("esm", schema, empty_cache_, sizes)
    load_base(schema, empty_cache_, [esm])
    apex = schema.apex_level
    esm.find(apex, 0)
    # One chain visits far fewer nodes than the walk census.
    assert esm.last_find_visits < count_walks_to_base(apex, schema.heights)
    # ...and never more than the total chunk count.
    total_chunks = schema.total_chunks()
    assert esm.last_find_visits <= total_chunks


def test_esmc_warm_visits_grow_with_path_count(schema, sizes, empty_cache_):
    """ESMC explores *every* path even when warm: its visit count at the
    apex (12 paths in the tiny lattice) dwarfs a single-path lookup."""
    esmc = make_strategy("esmc", schema, empty_cache_, sizes)
    vcmc = make_strategy("vcmc", schema, empty_cache_, sizes)
    load_base(schema, empty_cache_, [esmc, vcmc])
    apex = schema.apex_level
    assert paths_to_base(apex, schema.heights) == 12
    esmc.find(apex, 0)
    esmc_visits = esmc.last_find_visits
    vcmc.find(apex, 0)
    assert esmc_visits > 5 * vcmc.last_find_visits


def test_lifetime_visit_counter_accumulates(schema, sizes, empty_cache_):
    vcm = make_strategy("vcm", schema, empty_cache_, sizes)
    vcm.find(schema.apex_level, 0)
    vcm.find(schema.apex_level, 0)
    assert vcm.total_visits == 2
