"""Query log tests."""

from __future__ import annotations

import csv

import pytest

from repro import AggregateCache, Query
from repro.core.manager import write_query_log_csv


@pytest.fixture
def manager(tiny_schema, tiny_backend):
    return AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        keep_log=True,
    )


def test_log_disabled_by_default(tiny_schema, tiny_backend):
    manager = AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20
    )
    manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    assert manager.query_log == []


def test_log_records_each_query(manager, tiny_schema):
    manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
    manager.query(Query.full_level(tiny_schema, (1, 1, 0)))
    assert len(manager.query_log) == 2
    first, second = manager.query_log
    assert first.sequence == 1 and second.sequence == 2
    assert first.level == (0, 0, 0)
    assert first.complete_hit
    assert first.aggregated >= 1


def test_log_breakdown_consistent(manager, tiny_schema):
    result = manager.query(Query.full_level(tiny_schema, (0, 1, 1)))
    record = manager.query_log[-1]
    assert record.lookup_ms == result.breakdown.lookup_ms
    assert record.tuples_aggregated == result.tuples_aggregated
    assert record.cache_used_bytes == manager.cache.used_bytes


def test_log_csv_roundtrip(manager, tiny_schema, tmp_path):
    for level in [(0, 0, 0), (2, 1, 1), (1, 0, 1)]:
        manager.query(Query.full_level(tiny_schema, level))
    path = tmp_path / "log.csv"
    assert write_query_log_csv(manager.query_log, path) == 3
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 3
    assert rows[0]["level"] == "0,0,0"
    assert rows[0]["complete_hit"] == "True"
    assert int(rows[2]["sequence"]) == 3
