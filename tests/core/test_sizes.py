"""Size estimator tests."""

from __future__ import annotations

import pytest

from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


def test_fill_bounds(schema):
    sizes = SizeEstimator(schema, total_base_tuples=10)
    for level in schema.all_levels():
        fill = sizes.level_fill(level)
        assert 0.0 < fill <= 1.0


def test_apex_always_full(schema):
    sizes = SizeEstimator(schema, total_base_tuples=1)
    assert sizes.level_fill(schema.apex_level) == 1.0
    assert sizes.level_tuples(schema.apex_level) == 1.0


def test_fill_monotone_in_tuples(schema):
    small = SizeEstimator(schema, total_base_tuples=4)
    large = SizeEstimator(schema, total_base_tuples=64)
    level = schema.base_level
    assert small.level_fill(level) < large.level_fill(level)


def test_fill_monotone_in_aggregation(schema):
    """More aggregated levels are denser: fewer cells, same facts."""
    sizes = SizeEstimator(schema, total_base_tuples=8)
    assert sizes.level_fill((0, 0, 0)) >= sizes.level_fill((1, 1, 1))
    assert sizes.level_fill((1, 1, 1)) >= sizes.level_fill((2, 1, 1))


def test_chunk_tuples_sum_to_level_tuples(schema):
    sizes = SizeEstimator(schema, total_base_tuples=12)
    for level in schema.all_levels():
        total = sum(
            sizes.chunk_tuples(level, n)
            for n in range(schema.num_chunks(level))
        )
        assert total == pytest.approx(sizes.level_tuples(level))


def test_bytes_scale_with_tuple_size(schema):
    sizes = SizeEstimator(schema, total_base_tuples=12)
    level = schema.base_level
    assert sizes.level_bytes(level) == pytest.approx(
        sizes.level_tuples(level) * schema.bytes_per_tuple
    )
    assert sizes.chunk_bytes(level, 0) == pytest.approx(
        sizes.chunk_tuples(level, 0) * schema.bytes_per_tuple
    )


def test_estimate_tracks_actual_sizes():
    """On uniform data the estimator should be within ~25% of reality at
    the base level of a reasonably sized cube."""
    from repro import BackendDatabase, generate_fact_table
    from repro.schema import apb_small_schema

    schema = apb_small_schema()
    facts = generate_fact_table(schema, num_tuples=50_000, seed=3)
    backend = BackendDatabase(schema, facts)
    sizes = SizeEstimator(schema, facts.num_tuples)
    actual = facts.num_tuples
    estimated = sizes.level_tuples(schema.base_level)
    assert abs(estimated - actual) / actual < 0.25
    # And per-chunk at the base level.
    for number in backend.base_chunk_numbers()[:10]:
        est = sizes.chunk_tuples(schema.base_level, number)
        act = backend.base_chunk(number).size_tuples
        assert abs(est - act) / max(act, 1) < 0.5
