"""Property test: incremental count maintenance equals a from-scratch
recount after ANY interleaved insert/evict sequence.

The incremental algorithms (``on_insert`` / ``on_evict``) are the paper's
whole point — Section 4 argues eviction is the exact mirror of insertion.
This drives them with arbitrary interleavings (including inserting chunks
at several levels, re-evicting, and re-inserting) and checks every count
array against a :class:`CountStore` rebuilt from the final resident set
alone.  Order independence is exactly what the concurrent service layer
relies on when admissions from different queries interleave.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counts import CountStore
from repro.schema import apb_tiny_schema

SCHEMA = apb_tiny_schema()
ALL_KEYS = [
    (level, number)
    for level in SCHEMA.all_levels()
    for number in range(SCHEMA.num_chunks(level))
]


@st.composite
def interleavings(draw):
    """A sequence of (key, opcode) where the opcode toggles residency:
    insert if the chunk is out, evict if it is in."""
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(ALL_KEYS) - 1),
            min_size=0,
            max_size=60,
        )
    )
    return [ALL_KEYS[i] for i in indices]


def rebuild_from(resident) -> CountStore:
    store = CountStore(SCHEMA)
    for level, number in resident:
        store.on_insert(level, number)
    return store


def assert_counts_equal(maintained: CountStore, recounted: CountStore):
    for level in SCHEMA.all_levels():
        assert np.array_equal(
            maintained.counts_array(level), recounted.counts_array(level)
        ), f"diverged at level {level}"


@settings(max_examples=60, deadline=None)
@given(ops=interleavings())
def test_interleaved_inserts_and_evicts_match_recount(ops):
    store = CountStore(SCHEMA)
    resident: set = set()
    for key in ops:
        if key in resident:
            store.on_evict(*key)
            resident.discard(key)
        else:
            store.on_insert(*key)
            resident.add(key)
    assert_counts_equal(store, rebuild_from(resident))


@settings(max_examples=30, deadline=None)
@given(ops=interleavings())
def test_full_teardown_returns_to_zero(ops):
    """Inserting any set and evicting everything leaves all counts zero."""
    store = CountStore(SCHEMA)
    resident: set = set()
    for key in ops:
        if key not in resident:
            store.on_insert(*key)
            resident.add(key)
    for key in resident:
        store.on_evict(*key)
    for level in SCHEMA.all_levels():
        assert not store.counts_array(level).any()


def test_evicting_uncounted_chunk_fails_loudly():
    """Underflow (evicting a chunk that was never counted) must raise
    rather than silently corrupt counts — the guard the concurrent stress
    relies on to surface double-evict races."""
    from repro.util.errors import ReproError

    store = CountStore(SCHEMA)
    level, number = ALL_KEYS[0]
    with pytest.raises(ReproError, match="underflow"):
        store.on_evict(level, number)
