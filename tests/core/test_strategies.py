"""Lookup strategy tests.

The heart of the reproduction: all four strategies must agree with the
brute-force computability oracle; the cost-based ones must find true
least-cost plans; every returned plan must execute to the correct data;
and the complexity instrumentation must show the orderings the paper
claims (VCM constant-time rejects, ESMC >= ESM work, etc.).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import rollup_chunks
from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.core.sizes import SizeEstimator
from repro.core.strategies import STRATEGY_NAMES, make_strategy
from repro.schema import apb_tiny_schema
from repro.util.errors import LookupBudgetExceeded, ReproError
from tests.helpers import (
    direct_aggregate,
    expected_cells_in_chunk,
    oracle_computable,
    oracle_min_cost,
)

AGG_STRATEGIES = ("esm", "esmc", "vcm", "vcmc")


def fresh_setup(schema, facts):
    cache = ChunkCache(1 << 30, make_policy("benefit"), schema.bytes_per_tuple)
    sizes = SizeEstimator(schema, facts.num_tuples)
    return cache, sizes


def insert_keys(schema, backend, cache, strategies, keys):
    for level, number in keys:
        chunk = backend.compute_chunk(level, number)
        cache.insert(chunk, benefit=1.0)
        for strategy in strategies:
            strategy.on_insert(level, number)


def all_keys(schema):
    return [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]


def test_registry_names():
    assert set(STRATEGY_NAMES) == {"esm", "esmc", "vcm", "vcmc", "noagg"}


def test_unknown_strategy_rejected(tiny_schema, tiny_facts, big_cache):
    sizes = SizeEstimator(tiny_schema, tiny_facts.num_tuples)
    with pytest.raises(ReproError, match="unknown strategy"):
        make_strategy("bogus", tiny_schema, big_cache, sizes)


@pytest.mark.parametrize("name", AGG_STRATEGIES)
def test_empty_cache_nothing_computable(name, tiny_schema, tiny_facts, big_cache):
    sizes = SizeEstimator(tiny_schema, tiny_facts.num_tuples)
    strategy = make_strategy(name, tiny_schema, big_cache, sizes)
    for level, number in all_keys(tiny_schema):
        assert strategy.find(level, number) is None


@pytest.mark.parametrize("name", AGG_STRATEGIES)
def test_direct_hit_returns_leaf(name, tiny_schema, tiny_facts, tiny_backend):
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    strategy = make_strategy(name, tiny_schema, cache, sizes)
    key = ((1, 1, 0), 1)
    insert_keys(tiny_schema, tiny_backend, cache, [strategy], [key])
    plan = strategy.find(*key)
    assert plan is not None and plan.is_leaf
    assert (plan.level, plan.number) == key


@pytest.mark.parametrize("name", AGG_STRATEGIES)
def test_agrees_with_oracle_on_partial_cache(
    name, tiny_schema, tiny_facts, tiny_backend
):
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    strategy = make_strategy(name, tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    # Cache base chunks 0..5 (of 8) plus one mid-level chunk.
    cached = {(base, n) for n in range(6)} | {((1, 1, 1), 1)}
    insert_keys(tiny_schema, tiny_backend, cache, [strategy], sorted(cached))
    for level, number in all_keys(tiny_schema):
        expected = oracle_computable(tiny_schema, cached, level, number)
        plan = strategy.find(level, number)
        assert (plan is not None) == expected, (name, level, number)


@pytest.mark.parametrize("name", AGG_STRATEGIES)
def test_plans_execute_to_ground_truth(
    name, tiny_schema, tiny_facts, tiny_backend
):
    """Any plan a strategy returns must aggregate to the right answer."""
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    strategy = make_strategy(name, tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    keys = [(base, n) for n in range(tiny_schema.num_chunks(base))]
    insert_keys(tiny_schema, tiny_backend, cache, [strategy], keys)

    def execute(node):
        if node.is_leaf:
            return cache.peek(node.level, node.number)
        inputs = [execute(child) for child in node.inputs]
        return rollup_chunks(tiny_schema, node.level, node.number, inputs)

    for level in [(0, 0, 0), (1, 0, 1), (2, 1, 0), (0, 1, 1)]:
        truth = direct_aggregate(tiny_facts, level)
        for number in range(tiny_schema.num_chunks(level)):
            plan = strategy.find(level, number)
            assert plan is not None
            chunk = execute(plan)
            expected = expected_cells_in_chunk(
                tiny_schema, truth, level, number
            )
            assert chunk.cell_dict() == pytest.approx(expected), (
                name,
                level,
                number,
            )


@pytest.mark.parametrize("name", ["esmc", "vcmc"])
def test_cost_based_plans_are_least_cost(
    name, tiny_schema, tiny_facts, tiny_backend
):
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    strategy = make_strategy(name, tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    cached = {(base, n) for n in range(tiny_schema.num_chunks(base))}
    cached |= {((1, 1, 1), n) for n in range(tiny_schema.num_chunks((1, 1, 1)))}
    insert_keys(tiny_schema, tiny_backend, cache, [strategy], sorted(cached))
    for level, number in all_keys(tiny_schema):
        plan = strategy.find(level, number)
        expected = oracle_min_cost(tiny_schema, sizes, cached, level, number)
        if plan is None:
            assert math.isinf(expected)
            continue
        assert plan.estimated_cost(sizes) == pytest.approx(expected), (
            name,
            level,
            number,
        )


def test_esm_takes_first_path_not_cheapest(tiny_schema, tiny_facts, tiny_backend):
    """ESM stops at the first successful path, which can cost more than
    the optimum — the motivation for the cost-based variants."""
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    esm = make_strategy("esm", tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    cached = {(base, n) for n in range(tiny_schema.num_chunks(base))}
    # A cheap path exists through (0,1,1), but ESM searches Product first.
    mid = (0, 1, 1)
    cached |= {(mid, n) for n in range(tiny_schema.num_chunks(mid))}
    insert_keys(tiny_schema, tiny_backend, cache, [esm], sorted(cached))
    plan = esm.find((0, 0, 0), 0)
    optimum = oracle_min_cost(tiny_schema, sizes, cached, (0, 0, 0), 0)
    assert plan.estimated_cost(sizes) > optimum


def test_vcm_rejects_in_constant_visits(tiny_schema, tiny_facts, big_cache):
    sizes = SizeEstimator(tiny_schema, tiny_facts.num_tuples)
    vcm = make_strategy("vcm", tiny_schema, big_cache, sizes)
    vcm.find(tiny_schema.apex_level, 0)
    assert vcm.last_find_visits == 1
    esm = make_strategy("esm", tiny_schema, big_cache, sizes)
    esm.find(tiny_schema.apex_level, 0)
    assert esm.last_find_visits > 10


def test_vcm_explores_one_path_when_computable(
    tiny_schema, tiny_facts, tiny_backend
):
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    vcm = make_strategy("vcm", tiny_schema, cache, sizes)
    esm = make_strategy("esm", tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    keys = [(base, n) for n in range(tiny_schema.num_chunks(base))]
    insert_keys(tiny_schema, tiny_backend, cache, [vcm, esm], keys)
    plan_vcm = vcm.find(tiny_schema.apex_level, 0)
    # One visit per plan node: VCM never explores a failing branch.
    assert vcm.last_find_visits == plan_vcm.num_nodes


def test_esmc_does_more_work_than_esm_on_warm_cache(
    tiny_schema, tiny_facts, tiny_backend
):
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    esm = make_strategy("esm", tiny_schema, cache, sizes)
    esmc = make_strategy("esmc", tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    keys = [(base, n) for n in range(tiny_schema.num_chunks(base))]
    insert_keys(tiny_schema, tiny_backend, cache, [esm, esmc], keys)
    esm.find(tiny_schema.apex_level, 0)
    esmc.find(tiny_schema.apex_level, 0)
    assert esmc.last_find_visits > esm.last_find_visits


def test_visit_budget_enforced(tiny_schema, tiny_facts, big_cache):
    sizes = SizeEstimator(tiny_schema, tiny_facts.num_tuples)
    esm = make_strategy("esm", tiny_schema, big_cache, sizes, visit_budget=5)
    with pytest.raises(LookupBudgetExceeded):
        esm.find(tiny_schema.apex_level, 0)


def test_noagg_only_direct_hits(tiny_schema, tiny_facts, tiny_backend):
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    noagg = make_strategy("noagg", tiny_schema, cache, sizes)
    base = tiny_schema.base_level
    keys = [(base, n) for n in range(tiny_schema.num_chunks(base))]
    insert_keys(tiny_schema, tiny_backend, cache, [noagg], keys)
    assert noagg.find(base, 0).is_leaf
    assert noagg.find(tiny_schema.apex_level, 0) is None


def test_state_bytes_accounting(tiny_schema, tiny_facts, big_cache):
    sizes = SizeEstimator(tiny_schema, tiny_facts.num_tuples)
    total_chunks = tiny_schema.total_chunks()
    for name, expected in [
        ("esm", 0),
        ("esmc", 0),
        ("noagg", 0),
        ("vcm", total_chunks * 1),
        ("vcmc", total_chunks * 6),
    ]:
        strategy = make_strategy(name, tiny_schema, big_cache, sizes)
        assert strategy.state_bytes() == expected, name


def test_maintenance_consistency_after_evictions(
    tiny_schema, tiny_facts, tiny_backend
):
    """VCM/VCMC must stay oracle-consistent through insert/evict churn."""
    cache, sizes = fresh_setup(tiny_schema, tiny_facts)
    vcm = make_strategy("vcm", tiny_schema, cache, sizes)
    vcmc = make_strategy("vcmc", tiny_schema, cache, sizes)
    strategies = [vcm, vcmc]
    base = tiny_schema.base_level
    cached = set()
    keys = [(base, n) for n in range(tiny_schema.num_chunks(base))]
    insert_keys(tiny_schema, tiny_backend, cache, strategies, keys)
    cached.update(keys)
    # Evict half the base.
    for level, number in keys[::2]:
        cache.evict(level, number)
        for strategy in strategies:
            strategy.on_evict(level, number)
        cached.discard((level, number))
    for level, number in all_keys(tiny_schema):
        expected = oracle_computable(tiny_schema, cached, level, number)
        assert (vcm.find(level, number) is not None) == expected
        assert (vcmc.find(level, number) is not None) == expected


@settings(max_examples=15, deadline=None)
@given(
    picks=st.lists(st.integers(0, 10_000), min_size=1, max_size=12),
    seed=st.integers(0, 100),
)
def test_all_strategies_agree_randomised(picks, seed):
    """Property: on random cache contents every aggregation-capable
    strategy gives the same computable/not-computable verdict, and the two
    cost-based ones report the same optimal cost."""
    from repro import BackendDatabase, generate_fact_table

    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=60, seed=seed)
    backend = BackendDatabase(schema, facts)
    cache = ChunkCache(1 << 30, make_policy("benefit"), schema.bytes_per_tuple)
    sizes = SizeEstimator(schema, facts.num_tuples)
    strategies = [
        make_strategy(name, schema, cache, sizes) for name in AGG_STRATEGIES
    ]
    keys = [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]
    cached: set = set()
    for pick in picks:
        key = keys[pick % len(keys)]
        if key in cached:
            continue
        chunk = backend.compute_chunk(*key)
        cache.insert(chunk, benefit=1.0)
        for strategy in strategies:
            strategy.on_insert(*key)
        cached.add(key)
    probe_levels = [(0, 0, 0), (1, 1, 0), (2, 0, 1)]
    for level in probe_levels:
        for number in range(schema.num_chunks(level)):
            plans = [s.find(level, number) for s in strategies]
            verdicts = [p is not None for p in plans]
            assert len(set(verdicts)) == 1, (level, number, verdicts)
            if verdicts[0]:
                esmc_cost = plans[1].estimated_cost(sizes)
                vcmc_cost = plans[3].estimated_cost(sizes)
                assert esmc_cost == pytest.approx(vcmc_cost)
