"""HRU greedy view-selection tests."""

from __future__ import annotations

import pytest

from repro.core.sizes import SizeEstimator
from repro.precompute import greedy_select
from repro.schema import apb_tiny_schema
from repro.schema.lattice import is_computable_from


@pytest.fixture(scope="module")
def schema():
    return apb_tiny_schema()


@pytest.fixture(scope="module")
def sizes(schema):
    return SizeEstimator(schema, total_base_tuples=14)


def test_respects_budget(schema, sizes):
    budget = sizes.level_bytes(schema.base_level) * 0.5
    choices = greedy_select(schema, sizes, budget)
    assert sum(c.bytes for c in choices) <= budget + 1e-9
    assert all(c.level != schema.base_level for c in choices)


def test_zero_budget_selects_nothing(schema, sizes):
    assert greedy_select(schema, sizes, 0.0) == []


def test_benefits_monotonically_justified(schema, sizes):
    """Every chosen view must have positive benefit at pick time."""
    budget = sizes.level_bytes(schema.base_level)
    choices = greedy_select(schema, sizes, budget)
    assert choices
    assert all(c.benefit > 0 for c in choices)


def test_first_pick_maximises_score(schema, sizes):
    """The first pick must beat every single-view alternative."""
    budget = sizes.level_bytes(schema.base_level)
    first = greedy_select(schema, sizes, budget, max_views=1)[0]
    base_cost = sizes.level_tuples(schema.base_level)
    for level in schema.all_levels():
        if level == schema.base_level:
            continue
        view_cost = sizes.level_tuples(level)
        benefit = sum(
            max(0.0, base_cost - view_cost)
            for target in schema.all_levels()
            if is_computable_from(target, level)
        )
        score = benefit / max(sizes.level_bytes(level), 1.0)
        assert first.score >= score - 1e-9


def test_no_duplicate_views(schema, sizes):
    budget = sizes.level_bytes(schema.base_level) * 2
    choices = greedy_select(schema, sizes, budget)
    levels = [c.level for c in choices]
    assert len(set(levels)) == len(levels)


def test_max_views_cap(schema, sizes):
    budget = sizes.level_bytes(schema.base_level) * 2
    choices = greedy_select(schema, sizes, budget, max_views=2)
    assert len(choices) <= 2


def test_classic_variant_prefers_raw_benefit(schema, sizes):
    budget = sizes.level_bytes(schema.base_level) * 2
    per_unit = greedy_select(schema, sizes, budget)
    classic = greedy_select(schema, sizes, budget, per_unit_space=False)
    assert per_unit and classic  # both select something


def test_selected_set_lowers_answer_costs(schema, sizes):
    """After selection, every group-by must be answerable at most at its
    pre-selection (base-scan) cost; most should improve."""
    base_cost = sizes.level_tuples(schema.base_level)
    budget = sizes.level_bytes(schema.base_level)
    choices = greedy_select(schema, sizes, budget)
    selected = [c.level for c in choices] + [schema.base_level]
    improved = 0
    for target in schema.all_levels():
        cost = min(
            sizes.level_tuples(v)
            for v in selected
            if is_computable_from(target, v)
        )
        assert cost <= base_cost + 1e-9
        if cost < base_cost:
            improved += 1
    # On the tiny near-dense cube only some levels are cheaper than a
    # base scan at all; the selection must still improve several.
    assert improved >= 3


def test_manager_preload_levels(tiny_schema, tiny_backend):
    from repro import AggregateCache

    manager = AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20, preload=False
    )
    loaded = manager.preload_levels([(1, 1, 1), (0, 1, 1)])
    assert loaded == [(1, 1, 1), (0, 1, 1)]
    for level in loaded:
        for number in range(tiny_schema.num_chunks(level)):
            assert manager.cache.contains(level, number)
