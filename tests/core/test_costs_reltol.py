"""Relative-tolerance cost propagation tests.

``CostStore(rel_tol=..)`` skips cascading sub-threshold cost changes.
Guarantees under test: computability (the inf boundary) stays *exact*,
maintained costs stay within the tolerance band of the true optimum under
single perturbations, and the update volume shrinks.
"""

from __future__ import annotations

import math

import pytest

from repro.core.costs import CostStore
from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema
from tests.helpers import oracle_computable, oracle_min_cost


@pytest.fixture
def schema():
    return apb_tiny_schema()


@pytest.fixture
def sizes(schema):
    return SizeEstimator(schema, total_base_tuples=14)


def all_keys(schema):
    return [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]


def load_base(schema, store):
    cached = set()
    for n in range(schema.num_chunks(schema.base_level)):
        store.on_insert(schema.base_level, n)
        cached.add((schema.base_level, n))
    return cached


def test_computability_always_exact(schema, sizes):
    store = CostStore(schema, sizes, rel_tol=0.5)  # very sloppy tolerance
    cached = load_base(schema, store)
    store.on_insert((1, 1, 0), 0)
    cached.add(((1, 1, 0), 0))
    store.on_evict(schema.base_level, 0)
    cached.discard((schema.base_level, 0))
    for level, number in all_keys(schema):
        expected = oracle_computable(schema, cached, level, number)
        assert store.is_computable(level, number) == expected


def test_costs_within_tolerance_band(schema, sizes):
    rel_tol = 0.05
    store = CostStore(schema, sizes, rel_tol=rel_tol)
    cached = load_base(schema, store)
    # One perturbation: inserting a mid-level chunk whose improvement may
    # or may not cascade depending on magnitude.
    store.on_insert((1, 1, 1), 0)
    cached.add(((1, 1, 1), 0))
    for level, number in all_keys(schema):
        truth = oracle_min_cost(schema, sizes, cached, level, number)
        got = store.cost(level, number)
        if math.isinf(truth):
            assert math.isinf(got)
        else:
            # Maintained cost is conservative (never below the optimum
            # minus noise) and within the tolerance per skipped hop.
            assert got >= truth - 1e-9
            assert got <= truth * (1 + rel_tol) ** 4 + 1e-6


def test_zero_tolerance_is_exact(schema, sizes):
    exact = CostStore(schema, sizes, rel_tol=0.0)
    cached = load_base(schema, exact)
    exact.on_insert((0, 1, 1), 1)
    cached.add(((0, 1, 1), 1))
    for level, number in all_keys(schema):
        truth = oracle_min_cost(schema, sizes, cached, level, number)
        got = exact.cost(level, number)
        if math.isinf(truth):
            assert math.isinf(got)
        else:
            assert got == pytest.approx(truth)


def test_tolerance_reduces_update_volume():
    """On a bigger schema with churn, rel_tol must cut propagation work."""
    from repro.schema import apb_small_schema

    schema = apb_small_schema()
    sizes = SizeEstimator(schema, total_base_tuples=50_000)
    updates = {}
    for rel_tol in (0.0, 0.05):
        store = CostStore(schema, sizes, rel_tol=rel_tol)
        base = schema.base_level
        for n in range(schema.num_chunks(base)):
            store.on_insert(base, n)
        # Churn: repeatedly insert/evict chunks of a mid level.
        mid = (3, 1, 2, 1, 0)
        for _ in range(3):
            for n in range(schema.num_chunks(mid)):
                store.on_insert(mid, n)
            for n in range(schema.num_chunks(mid)):
                store.on_evict(mid, n)
        updates[rel_tol] = store.total_updates
    assert updates[0.05] <= updates[0.0]
