"""Arbitrary (non-chunk-aligned) range query tests."""

from __future__ import annotations

import pytest

from repro import AggregateCache, Query
from repro.util.errors import SchemaError
from tests.helpers import direct_aggregate


@pytest.fixture
def manager(tiny_schema, tiny_backend):
    return AggregateCache(
        tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy="vcmc"
    )


def expected_in_ranges(facts, level, cell_ranges):
    cells = direct_aggregate(facts, level)
    return {
        cell: value
        for cell, value in cells.items()
        if all(lo <= c < hi for c, (lo, hi) in zip(cell, cell_ranges))
    }


def gathered(result):
    cells = {}
    for chunk in result.chunks:
        cells.update(chunk.cell_dict())
    return cells


def test_from_cell_ranges_snaps_outward(tiny_schema):
    # Base level Product has 4 single-value chunks; [1, 3) covers two.
    query = Query.from_cell_ranges(
        tiny_schema, tiny_schema.base_level, ((1, 3), (0, 2), (0, 2))
    )
    assert query.chunk_ranges[0] == (1, 3)
    # Time has one chunk covering both values.
    assert query.chunk_ranges[2] == (0, 1)


def test_from_cell_ranges_validation(tiny_schema):
    with pytest.raises(SchemaError, match="out of bounds"):
        Query.from_cell_ranges(
            tiny_schema, tiny_schema.base_level, ((0, 9), (0, 1), (0, 1))
        )
    with pytest.raises(SchemaError, match="dimensions"):
        Query.from_cell_ranges(tiny_schema, tiny_schema.base_level, ((0, 1),))


@pytest.mark.parametrize(
    "level,ranges",
    [
        ((2, 1, 1), ((1, 3), (0, 1), (0, 2))),
        ((2, 1, 1), ((0, 4), (1, 2), (1, 2))),
        ((1, 1, 0), ((0, 1), (0, 2), (0, 1))),
        ((0, 0, 0), ((0, 1), (0, 1), (0, 1))),
    ],
)
def test_range_query_matches_direct(
    level, ranges, manager, tiny_schema, tiny_facts
):
    result = manager.range_query(level, ranges)
    assert gathered(result) == pytest.approx(
        expected_in_ranges(tiny_facts, level, ranges)
    )


def test_range_query_does_not_mutate_cache(manager, tiny_schema, tiny_facts):
    level = tiny_schema.base_level
    manager.range_query(level, ((1, 2), (0, 1), (0, 1)))
    # The cached base chunks must remain complete: a full query still
    # returns everything.
    full = manager.query(Query.full_level(tiny_schema, level))
    assert full.total_value() == pytest.approx(tiny_facts.total())


def test_range_query_uses_cache(manager, tiny_schema):
    result = manager.range_query(
        tiny_schema.base_level, ((0, 2), (0, 1), (0, 1))
    )
    assert result.complete_hit  # preloaded base


def test_range_query_preserves_extras(tiny_schema):
    from repro import BackendDatabase, generate_fact_table
    from repro.schema import CubeSchema, Dimension

    schema = CubeSchema(
        [
            Dimension.uniform("Product", [1, 2, 4], [1, 2, 4]),
            Dimension.uniform("Customer", [1, 2], [1, 2]),
            Dimension.uniform("Time", [1, 2], [1, 1]),
        ],
        measure=["UnitSales", "DollarSales"],
    )
    facts = generate_fact_table(schema, num_tuples=300, seed=4)
    manager = AggregateCache(
        schema,
        BackendDatabase(schema, facts),
        capacity_bytes=1 << 20,
    )
    result = manager.range_query(schema.base_level, ((0, 2), (0, 2), (0, 1)))
    for chunk in result.chunks:
        assert len(chunk.extras) == 1
        assert len(chunk.extras[0]) == chunk.size_tuples
