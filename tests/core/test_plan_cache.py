"""The region-scoped generation-stamped plan cache.

Unit tests pin the invalidation algebra — a memo for chunk ``(L, n)`` is
invalidated by movement of chunk ``(M, m)`` iff M is a lattice ancestor
of L (componentwise M >= L) AND ``m``'s chunk region overlaps the
regions covering ``n``'s parents — and the integration tests verify the
properties the cache exists for: a valid hit skips the lattice search
entirely, a stale hit replans instead of serving an outdated plan, and
movement in untouched regions causes ZERO stale replans.
"""

from __future__ import annotations

import pytest

from repro import (
    AggregateCache,
    BackendDatabase,
    CostModel,
    Observability,
    Query,
    generate_fact_table,
)
from repro.cache.replacement import make_policy
from repro.cache.store import ChunkCache
from repro.core.plans import PlanCache, PlanNode, PlanOutcome
from repro.core.sizes import SizeEstimator
from repro.core.strategies import make_strategy
from repro.schema import apb_tiny_schema


@pytest.fixture
def schema():
    return apb_tiny_schema()


@pytest.fixture
def plan_cache(schema):
    return PlanCache(schema)


def test_hit_returns_stored_plan(plan_cache, schema):
    apex = tuple(0 for _ in schema.base_level)
    plan = PlanNode.leaf(apex, 0)
    plan_cache.store(apex, 0, plan)
    outcome, got = plan_cache.lookup(apex, 0)
    assert outcome is PlanOutcome.HIT and got is plan
    assert plan_cache.hits == 1 and plan_cache.misses == 0


def test_none_verdicts_are_memoised(plan_cache, schema):
    apex = tuple(0 for _ in schema.base_level)
    assert plan_cache.lookup(apex, 0) == (PlanOutcome.MISS, None)
    plan_cache.store(apex, 0, None)
    outcome, got = plan_cache.lookup(apex, 0)
    assert outcome is PlanOutcome.HIT and got is None
    assert plan_cache.misses == 1 and plan_cache.hits == 1


def test_ancestor_movement_invalidates(plan_cache, schema):
    """Base-level movement can change the answer for every level: the
    apex chunk's parents span every base region, so ANY base bump lands
    in its dependency set."""
    apex = tuple(0 for _ in schema.base_level)
    plan_cache.store(apex, 0, PlanNode.leaf(apex, 0))
    plan_cache.bump([(schema.base_level, 0)])
    assert plan_cache.lookup(apex, 0) == (PlanOutcome.STALE, None)
    assert plan_cache.stale_hits == 1
    assert len(plan_cache) == 0, "stale entries are dropped, not kept"


def test_non_ancestor_movement_preserves(plan_cache, schema):
    """Apex movement cannot change how a base chunk is computed."""
    base = schema.base_level
    apex = tuple(0 for _ in base)
    assert apex != base
    plan = PlanNode.leaf(base, 0)
    plan_cache.store(base, 0, plan)
    plan_cache.bump([(apex, 0)])
    outcome, got = plan_cache.lookup(base, 0)
    assert outcome is PlanOutcome.HIT and got is plan
    assert plan_cache.stale_hits == 0


def test_untouched_region_movement_preserves(plan_cache, schema):
    """The storm fix: same-level movement in a DIFFERENT chunk region
    leaves the memo valid — zero stale replans on untouched regions."""
    base = schema.base_level
    last = schema.num_chunks(base) - 1
    assert plan_cache._region_index(base, 0) != plan_cache._region_index(
        base, last
    ), "fixture schema must give the base level at least two regions"
    plan = PlanNode.leaf(base, 0)
    plan_cache.store(base, 0, plan)
    plan_cache.bump([(base, last)])
    outcome, got = plan_cache.lookup(base, 0)
    assert outcome is PlanOutcome.HIT and got is plan
    assert plan_cache.stale_hits == 0


def test_same_region_movement_invalidates(plan_cache, schema):
    base = schema.base_level
    plan_cache.store(base, 0, PlanNode.leaf(base, 0))
    plan_cache.bump([(base, 0)])
    assert plan_cache.lookup(base, 0) == (PlanOutcome.STALE, None)


def test_single_region_reproduces_legacy_per_level_scheme(schema):
    """``max_regions_per_level=1`` collapses region scoping back to the
    seed's per-level generation counters: ANY movement at an ancestor
    level invalidates, however far away."""
    cache = PlanCache(schema, max_regions_per_level=1)
    base = schema.base_level
    last = schema.num_chunks(base) - 1
    cache.store(base, 0, PlanNode.leaf(base, 0))
    cache.bump([(base, last)])
    assert cache.lookup(base, 0) == (PlanOutcome.STALE, None)
    assert cache.num_regions == schema.num_levels


def test_restore_after_bump_is_valid_again(plan_cache, schema):
    apex = tuple(0 for _ in schema.base_level)
    plan_cache.store(apex, 0, PlanNode.leaf(apex, 0))
    plan_cache.bump([(schema.base_level, 0)])
    assert plan_cache.lookup(apex, 0) == (PlanOutcome.STALE, None)
    plan = PlanNode.leaf(apex, 0)
    plan_cache.store(apex, 0, plan)
    assert plan_cache.lookup(apex, 0) == (PlanOutcome.HIT, plan)


def test_bump_batches_distinct_regions_once(plan_cache, schema):
    """A wave bump advances each touched region's generation exactly
    once, so a wave of many chunks in one region costs one increment."""
    base = schema.base_level
    index = plan_cache._region_index(base, 0)
    before = int(plan_cache._gens[index])
    same_region = [
        (base, n)
        for n in range(schema.num_chunks(base))
        if plan_cache._region_index(base, n) == index
    ]
    assert len(same_region) >= 1
    plan_cache.bump(same_region * 3)
    assert int(plan_cache._gens[index]) == before + 1


def test_fifo_cap_drops_oldest(schema):
    cache = PlanCache(schema, max_entries=3)
    base = schema.base_level
    assert schema.num_chunks(base) >= 4
    for number in range(4):
        cache.store(base, number, None)
    assert len(cache) == 3
    assert cache.lookup(base, 0) == (PlanOutcome.MISS, None), (
        "oldest memo dropped"
    )
    assert cache.lookup(base, 3)[0] is PlanOutcome.HIT, "newest memo kept"


def test_hit_ratio_accounts_all_outcomes(plan_cache, schema):
    apex = tuple(0 for _ in schema.base_level)
    plan_cache.lookup(apex, 0)                      # miss
    plan_cache.store(apex, 0, None)
    plan_cache.lookup(apex, 0)                      # hit
    plan_cache.bump([(schema.base_level, 0)])
    plan_cache.lookup(apex, 0)                      # stale
    assert plan_cache.lookups == 3
    assert plan_cache.hit_ratio == pytest.approx(1 / 3)


def test_stats_reports_honest_accounting(plan_cache, schema):
    apex = tuple(0 for _ in schema.base_level)
    plan_cache.lookup(apex, 0)
    plan_cache.store(apex, 0, None)
    plan_cache.lookup(apex, 0)
    plan_cache.bump([(schema.base_level, 0)])
    plan_cache.lookup(apex, 0)
    stats = plan_cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["stale_hits"] == 1
    assert stats["lookups"] == stats["hits"] + stats["misses"] + stats[
        "stale_hits"
    ]
    assert stats["hit_ratio"] == pytest.approx(1 / 3)


# ---------------------------------------------------------------------- #
# integration: the hit skips the lattice search


def loaded_strategy(schema, with_plan_cache: bool):
    facts = generate_fact_table(schema, num_tuples=100, seed=1)
    backend = BackendDatabase(schema, facts)
    cache = ChunkCache(1 << 30, make_policy("benefit"), schema.bytes_per_tuple)
    strategy = make_strategy(
        "vcmc", schema, cache, SizeEstimator(schema, total_base_tuples=100)
    )
    if with_plan_cache:
        strategy.plan_cache = PlanCache(schema)
    base = schema.base_level
    for number in range(schema.num_chunks(base)):
        chunk = backend.compute_chunk(base, number)
        cache.insert(chunk, benefit=1.0)
        strategy.on_insert(base, number)
    return strategy


def test_plan_cache_hit_skips_lattice_search(schema):
    strategy = loaded_strategy(schema, with_plan_cache=True)
    apex = tuple(0 for _ in schema.base_level)
    first = strategy.find(apex, 0)
    assert first is not None
    visits_after_first = strategy.total_visits
    assert visits_after_first > 0
    second = strategy.find(apex, 0)
    assert second is first, "memoised plan object served verbatim"
    assert strategy.total_visits == visits_after_first, (
        "a valid plan-cache hit must not walk the lattice"
    )
    assert strategy.last_find_visits == 0


def test_stale_plan_cache_entry_replans(schema):
    strategy = loaded_strategy(schema, with_plan_cache=True)
    apex = tuple(0 for _ in schema.base_level)
    strategy.find(apex, 0)
    strategy.on_evict(schema.base_level, 0)
    visits_before = strategy.total_visits
    plan = strategy.find(apex, 0)
    assert strategy.plan_cache.stale_hits == 1
    assert strategy.total_visits > visits_before, "stale hit must replan"
    # The fresh plan reflects the eviction: chunk 0 is no longer a leaf
    # source unless recomputed another way.
    if plan is not None:
        for leaf in plan.leaves():
            assert (leaf.level, leaf.number) != (schema.base_level, 0)


def test_far_region_eviction_keeps_memo_valid(schema):
    """End to end on a real strategy: evicting a base chunk in a far
    region does not invalidate a same-level memo — the lookup stays a
    HIT with zero lattice visits."""
    strategy = loaded_strategy(schema, with_plan_cache=True)
    base = schema.base_level
    last = schema.num_chunks(base) - 1
    cache = strategy.plan_cache
    if cache._region_index(base, 0) == cache._region_index(base, last):
        pytest.skip("schema too small for distinct base regions")
    strategy.find(base, 0)
    strategy.on_evict(base, last)
    visits_before = strategy.total_visits
    plan = strategy.find(base, 0)
    assert plan is not None and plan.is_leaf
    assert cache.stale_hits == 0
    assert strategy.total_visits == visits_before


def test_bare_strategy_visit_counts_unchanged(schema):
    """Without a plan cache every find walks the lattice — the setting
    the paper's measured visit counts (test_complexity) rely on."""
    strategy = loaded_strategy(schema, with_plan_cache=False)
    assert strategy.plan_cache is None
    apex = tuple(0 for _ in schema.base_level)
    strategy.find(apex, 0)
    first_visits = strategy.last_find_visits
    strategy.find(apex, 0)
    assert strategy.last_find_visits == first_visits > 0


# ---------------------------------------------------------------------- #
# integration: manager wiring and metrics


def make_manager(tiny_schema, tiny_facts, obs=None, **kwargs):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    kwargs.setdefault("capacity_bytes", 1 << 20)
    kwargs.setdefault("strategy", "vcmc")
    kwargs.setdefault("policy", "benefit")
    kwargs.setdefault("preload", False)
    if obs is not None:
        kwargs["obs"] = obs
    return AggregateCache(tiny_schema, backend, **kwargs)


def test_manager_attaches_shared_plan_cache(tiny_schema, tiny_facts):
    manager = make_manager(tiny_schema, tiny_facts)
    assert manager.plan_cache is not None
    assert manager.strategy.plan_cache is manager.plan_cache


def test_manager_plan_cache_opt_out(tiny_schema, tiny_facts):
    manager = make_manager(tiny_schema, tiny_facts, plan_cache=False)
    assert manager.plan_cache is None
    assert manager.strategy.plan_cache is None


def test_manager_accepts_ready_plan_cache_instance(tiny_schema, tiny_facts):
    """Passing a configured instance (e.g. legacy single-region) wires it
    into both the manager and the strategy."""
    cache = PlanCache(tiny_schema, max_regions_per_level=1)
    manager = make_manager(tiny_schema, tiny_facts, plan_cache=cache)
    assert manager.plan_cache is cache
    assert manager.strategy.plan_cache is cache


def test_repeated_query_hits_plan_cache_and_counters(
    tiny_schema, tiny_facts
):
    obs = Observability.in_memory()
    manager = make_manager(tiny_schema, tiny_facts, obs=obs)
    query = Query.full_level(tiny_schema, tiny_schema.base_level)
    manager.query(query)
    manager.query(query)  # warm cache, no admissions: generations stable
    hits_before = manager.plan_cache.hits
    manager.query(query)
    assert manager.plan_cache.hits > hits_before
    counters = obs.snapshot()["counters"]
    assert counters["lookup.plan_cache.hits"] > 0
    assert counters["lookup.plan_cache.misses"] > 0


def test_stale_hits_counted_apart_from_misses(tiny_schema, tiny_facts):
    """The honesty satellite: stale hits surface under their own obs
    counter, never folded into misses."""
    obs = Observability.in_memory()
    manager = make_manager(tiny_schema, tiny_facts, obs=obs)
    base = tiny_schema.base_level
    query = Query.full_level(tiny_schema, base)
    manager.query(query)
    manager.query(query)  # admissions from query 1 made these stale
    manager.query(query)  # generations quiet: genuine hits
    # Force movement across every base region so the memoised verdicts
    # go stale, then look them up again.
    victims = [
        (base, number) for number in range(tiny_schema.num_chunks(base))
        if manager.cache.contains(base, number)
    ]
    manager.cache.evict_many(victims)
    manager.strategy.on_evict_many(victims)
    stale_before = manager.plan_cache.stale_hits
    manager.query(query)
    assert manager.plan_cache.stale_hits > stale_before
    counters = obs.snapshot()["counters"]
    assert counters["lookup.plan_cache.stale_hits"] > 0
    assert (
        counters.get("lookup.plan_cache.hits", 0)
        + counters.get("lookup.plan_cache.misses", 0)
        + counters["lookup.plan_cache.stale_hits"]
        == manager.plan_cache.lookups
    )


def test_plan_cache_results_match_opt_out_manager(tiny_schema, tiny_facts):
    """Same queries, same answers, with and without the plan cache."""
    with_cache = make_manager(tiny_schema, tiny_facts)
    without = make_manager(tiny_schema, tiny_facts, plan_cache=False)
    for level in tiny_schema.all_levels():
        query = Query.full_level(tiny_schema, level)
        for _ in range(2):
            a = with_cache.query(query)
            b = without.query(query)
            assert a.total_value() == pytest.approx(b.total_value())
            assert a.complete_hit == b.complete_hit
