"""Regressions for three hot-path bugs found in the seed.

1. ``preload_levels`` judged a level complete from per-chunk membership
   checks taken mid-loop, missing evictions caused by later inserts of the
   same level.
2. ``_check_within_chunk`` trusted endpoint checks on dimensions whose
   coordinate arrays ``unravel_index`` does not sort (every dimension but
   the first), letting out-of-chunk cells slip through.
3. ``_slice_chunk`` returned the cache-resident chunk object itself when
   the selection mask was all-true, aliasing cache state to callers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AggregateCache, BackendDatabase, CostModel
from repro.aggregation.aggregate import _check_within_chunk
from repro.chunks.chunk import Chunk
from repro.util.errors import ReproError


# --------------------------------------------------------------------- #
# 1. eviction during preload


def test_preload_levels_detects_eviction_within_level(
    tiny_schema, tiny_facts
):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    level = tiny_schema.base_level
    chunks = backend.compute_level(level)
    sizes = [c.size_bytes(tiny_schema.bytes_per_tuple) for c in chunks]
    nonzero = [s for s in sizes if s > 0]
    assert len(nonzero) >= 2, "test needs a level with several chunks"
    # Room for all but one chunk: the loop's later inserts must evict an
    # earlier chunk of the same level.
    capacity = sum(nonzero) - min(nonzero)
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=capacity,
        policy="benefit",
        preload=False,
    )
    loaded = manager.preload_levels([level])
    assert loaded == [], "an incompletely resident level reported loaded"
    # some chunk of the level must indeed be missing
    missing = [
        c.number
        for c in chunks
        if not manager.cache.contains(level, c.number)
    ]
    assert missing


def test_preload_levels_reports_levels_that_fully_fit(
    tiny_schema, tiny_facts
):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    level = tiny_schema.base_level
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, preload=False
    )
    loaded = manager.preload_levels([level])
    assert loaded == [level]
    for number in range(tiny_schema.num_chunks(level)):
        assert manager.cache.contains(level, number)


def test_preload_levels_detects_cross_level_eviction(
    tiny_schema, tiny_facts
):
    """A later level's inserts can also evict an earlier level's chunks;
    completeness must be judged after everything is in."""
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    first, second = (1, 1, 1), tiny_schema.base_level
    per_tuple = tiny_schema.bytes_per_tuple
    first_bytes = sum(
        c.size_bytes(per_tuple) for c in backend.compute_level(first)
    )
    second_sizes = [
        c.size_bytes(per_tuple) for c in backend.compute_level(second)
    ]
    capacity = first_bytes + sum(second_sizes) - min(
        s for s in second_sizes if s > 0
    )
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=capacity,
        policy="benefit",
        preload=False,
    )
    loaded = manager.preload_levels([first, second])
    for level in loaded:
        for number in range(tiny_schema.num_chunks(level)):
            assert manager.cache.contains(level, number), (
                f"level {level} reported loaded but chunk {number} is gone"
            )


# --------------------------------------------------------------------- #
# 2. out-of-chunk cells on unsorted dimensions


def _chunk_with_offset_span(schema, level):
    """A chunk of ``level`` whose dim-1 span starts above ordinal 0."""
    for number in range(schema.num_chunks(level)):
        spans = schema.chunks.chunk_cell_spans(level, number)
        if spans[1][0] > 0:
            return number, spans
    pytest.skip("schema has no chunk offset on dimension 1")


def test_check_within_chunk_catches_unsorted_dimension(tiny_schema):
    level = (1, 1, 1)
    number, spans = _chunk_with_offset_span(tiny_schema, level)
    (p_lo, _), (c_lo, _), (t_lo, _) = spans
    # Dimension 1's endpoints sit inside the span while a middle cell
    # falls below it — only a full min/max check can see the violation.
    chunk = Chunk(
        level=level,
        number=number,
        coords=(
            np.array([p_lo, p_lo, p_lo], dtype=np.int64),
            np.array([c_lo, c_lo - 1, c_lo], dtype=np.int64),
            np.array([t_lo, t_lo, t_lo], dtype=np.int64),
        ),
        values=np.ones(3),
        counts=np.ones(3, dtype=np.int64),
    )
    with pytest.raises(ReproError, match="dimension 1"):
        _check_within_chunk(tiny_schema, chunk)


def test_check_within_chunk_accepts_in_range_cells(tiny_schema):
    level = (1, 1, 1)
    number, spans = _chunk_with_offset_span(tiny_schema, level)
    coords = tuple(
        np.array([lo], dtype=np.int64) for lo, _ in spans
    )
    chunk = Chunk(
        level=level,
        number=number,
        coords=coords,
        values=np.ones(1),
        counts=np.ones(1, dtype=np.int64),
    )
    _check_within_chunk(tiny_schema, chunk)  # must not raise


# --------------------------------------------------------------------- #
# 3. range-query aliasing


def test_range_query_never_aliases_cached_chunks(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, preload=False
    )
    level = (1, 1, 1)
    full = tuple(
        (0, extent) for extent in tiny_schema.chunks.cell_shape(level)
    )
    for _ in range(2):  # first from the backend, then from the cache
        result = manager.range_query(level, full)
        for chunk in result.chunks:
            cached = manager.cache.peek(chunk.level, chunk.number)
            if cached is not None:
                assert chunk is not cached, (
                    "range_query handed out a cache-resident chunk object"
                )


def test_range_query_result_mutation_cannot_corrupt_cache(
    tiny_schema, tiny_facts
):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    manager = AggregateCache(
        tiny_schema, backend, capacity_bytes=1 << 20, preload=False
    )
    level = (1, 1, 1)
    full = tuple(
        (0, extent) for extent in tiny_schema.chunks.cell_shape(level)
    )
    result = manager.range_query(level, full)
    chunk = result.chunks[0]
    cached = manager.cache.peek(chunk.level, chunk.number)
    assert cached is not None
    original_cost = cached.compute_cost
    chunk.compute_cost = -123.0
    chunk.number = 10_000
    assert cached.compute_cost == original_cost
    assert cached.number != 10_000
    # data arrays may remain shared (read-only by contract)
    assert chunk.values is cached.values
