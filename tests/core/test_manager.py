"""AggregateCache (middle tier) tests: the full query path."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AggregateCache,
    BackendDatabase,
    CostModel,
    Query,
    QueryStreamGenerator,
    generate_fact_table,
)
from repro.schema import apb_tiny_schema
from tests.helpers import direct_aggregate, expected_cells_in_chunk


@pytest.fixture
def manager(tiny_schema, tiny_backend):
    return AggregateCache(
        tiny_schema,
        tiny_backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        policy="two_level",
    )


def query_answer_cells(schema, result):
    cells = {}
    for chunk in result.chunks:
        cells.update(chunk.cell_dict())
    return cells


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["esm", "esmc", "vcm", "vcmc", "noagg"])
    def test_every_strategy_answers_correctly(
        self, strategy, tiny_schema, tiny_backend, tiny_facts
    ):
        manager = AggregateCache(
            tiny_schema, tiny_backend, capacity_bytes=1 << 20, strategy=strategy
        )
        for level in [(0, 0, 0), (1, 1, 0), (2, 1, 1), (0, 1, 1)]:
            truth = direct_aggregate(tiny_facts, level)
            result = manager.query(Query.full_level(tiny_schema, level))
            assert query_answer_cells(tiny_schema, result) == pytest.approx(
                truth
            ), (strategy, level)

    def test_partial_region_answers_correctly(
        self, manager, tiny_schema, tiny_facts
    ):
        level = tiny_schema.base_level
        query = Query(level, ((1, 3), (0, 2), (0, 1)))
        truth = direct_aggregate(tiny_facts, level)
        result = manager.query(query)
        expected = {}
        for number in query.chunk_numbers(tiny_schema):
            expected.update(
                expected_cells_in_chunk(tiny_schema, truth, level, number)
            )
        assert query_answer_cells(tiny_schema, result) == pytest.approx(expected)

    def test_repeated_query_is_complete_hit(self, manager, tiny_schema):
        query = Query.full_level(tiny_schema, (1, 0, 1))
        manager.query(query)
        second = manager.query(query)
        assert second.complete_hit
        assert second.from_backend == 0

    def test_preload_makes_descendants_complete_hits(
        self, manager, tiny_schema
    ):
        # Capacity is huge, so the whole base table is preloaded.
        assert manager.preloaded_level == tiny_schema.base_level
        result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
        assert result.complete_hit
        assert result.aggregated == 1
        assert result.from_backend == 0


class TestAccounting:
    def test_breakdown_fields_populated(self, manager, tiny_schema):
        result = manager.query(Query.full_level(tiny_schema, (0, 1, 0)))
        b = result.breakdown
        assert b.lookup_ms >= 0 and b.aggregate_ms >= 0 and b.update_ms >= 0
        assert b.backend_ms == 0.0  # complete hit after preload
        assert result.total_ms == pytest.approx(b.total_ms)

    def test_miss_charges_backend(self, tiny_schema, tiny_backend):
        manager = AggregateCache(
            tiny_schema,
            tiny_backend,
            capacity_bytes=1 << 20,
            strategy="noagg",
            policy="benefit",
            preload=False,
        )
        result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
        assert not result.complete_hit
        assert result.from_backend == 1
        assert (
            result.breakdown.backend_ms
            >= tiny_backend.cost_model.connection_overhead_ms
        )

    def test_hit_counters(self, manager, tiny_schema):
        result = manager.query(Query.full_level(tiny_schema, tiny_schema.base_level))
        assert result.direct_hits == result.query.num_chunks
        assert result.aggregated == 0
        assert manager.complete_hit_ratio == 1.0

    def test_tuples_aggregated_counted(self, manager, tiny_schema, tiny_facts):
        result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
        # A (possibly multi-step) plan over the preloaded base reads every
        # base tuple at least once.
        assert result.tuples_aggregated >= tiny_facts.num_tuples

    def test_lookup_visits_reported(self, manager, tiny_schema):
        result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
        assert result.lookup_visits >= 1


class TestCachingBehaviour:
    def test_computed_chunks_are_admitted(self, manager, tiny_schema):
        query = Query.full_level(tiny_schema, (0, 0, 0))
        manager.query(query)
        assert manager.cache.contains((0, 0, 0), 0)

    def test_second_query_cheaper_than_first(self, tiny_schema, tiny_backend):
        manager = AggregateCache(
            tiny_schema,
            tiny_backend,
            capacity_bytes=1 << 20,
            strategy="vcmc",
            preload=False,
        )
        query = Query.full_level(tiny_schema, (1, 1, 1))
        first = manager.query(query)
        second = manager.query(query)
        assert first.breakdown.backend_ms > 0
        assert second.breakdown.backend_ms == 0.0

    def test_no_preload_flag(self, tiny_schema, tiny_backend):
        manager = AggregateCache(
            tiny_schema, tiny_backend, capacity_bytes=1 << 20, preload=False
        )
        assert manager.preloaded_level is None
        assert len(manager.cache) == 0

    def test_tiny_cache_still_correct(self, tiny_schema, tiny_backend, tiny_facts):
        manager = AggregateCache(
            tiny_schema,
            tiny_backend,
            capacity_bytes=60,  # 3 tuples worth of space
            strategy="vcmc",
        )
        truth = direct_aggregate(tiny_facts, (0, 0, 0))
        result = manager.query(Query.full_level(tiny_schema, (0, 0, 0)))
        assert query_answer_cells(tiny_schema, result) == pytest.approx(truth)

    def test_describe(self, manager):
        text = manager.describe()
        assert "vcmc" in text and "two_level" in text


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), strategy=st.sampled_from(["vcm", "vcmc", "esm"]))
def test_stream_always_answers_ground_truth(seed, strategy):
    """Property: over a random query stream with a small, churning cache,
    every answer equals direct aggregation of the fact table."""
    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=120, seed=seed)
    backend = BackendDatabase(schema, facts, CostModel())
    manager = AggregateCache(
        schema,
        backend,
        capacity_bytes=facts.size_bytes // 2 + 20,
        strategy=strategy,
        policy="two_level",
    )
    gen = QueryStreamGenerator(schema, seed=seed)
    truths: dict = {}
    for query in gen.generate(15):
        if query.level not in truths:
            truths[query.level] = direct_aggregate(facts, query.level)
        result = manager.query(query)
        expected = {}
        for number in query.chunk_numbers(schema):
            expected.update(
                expected_cells_in_chunk(
                    schema, truths[query.level], query.level, number
                )
            )
        assert query_answer_cells(schema, result) == pytest.approx(expected)
