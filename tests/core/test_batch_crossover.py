"""The adaptive scalar/batched crossover in the metadata stores.

``on_insert_many``/``on_evict_many`` route waves below
``batch_crossover`` through the scalar cascades (one lock hold, no
per-level array setup) and larger waves through the vectorised wave
machinery.  Both paths are the same function semantically; these tests
pin that — state, update charges and failure behaviour must not depend
on which side of the threshold a wave lands."""

from __future__ import annotations

import pytest

import numpy as np

from repro.core.costs import CostStore
from repro.core.counts import CountStore
from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError

SCHEMA = apb_tiny_schema()


def _wave(size: int):
    """A deterministic multi-level wave of ``size`` distinct keys."""
    keys = []
    for level in SCHEMA.all_levels():
        for number in range(SCHEMA.num_chunks(level)):
            keys.append((level, number))
    assert len(keys) >= size
    return keys[:size]


def _fresh_stores():
    sizes = SizeEstimator(SCHEMA, total_base_tuples=500)
    return CountStore(SCHEMA), CostStore(SCHEMA, sizes, rel_tol=0.0)


@pytest.mark.parametrize("size", [1, 4, 31, 32, 40])
def test_crossover_sides_leave_identical_count_state(size):
    """The same wave through the scalar route (crossover above) and the
    vectorised route (crossover 0) ends in the same counts and charges
    the same number of updates."""
    keys = _wave(size)
    small, _ = _fresh_stores()
    large, _ = _fresh_stores()
    small.batch_crossover = len(keys) + 1  # scalar path
    large.batch_crossover = 0  # vectorised path
    assert small.on_insert_many(keys) == large.on_insert_many(keys)
    for level in SCHEMA.all_levels():
        assert np.array_equal(
            small.counts_array(level), large.counts_array(level)
        )
    assert small.on_evict_many(keys) == large.on_evict_many(keys)
    for level in SCHEMA.all_levels():
        assert not small.counts_array(level).any()
        assert not large.counts_array(level).any()


@pytest.mark.parametrize("size", [1, 31, 32, 40])
def test_crossover_sides_leave_identical_cost_state(size):
    keys = _wave(size)
    _, small = _fresh_stores()
    _, large = _fresh_stores()
    small.batch_crossover = len(keys) + 1
    large.batch_crossover = 0
    small.on_insert_many(keys)
    large.on_insert_many(keys)
    for level in SCHEMA.all_levels():
        assert np.array_equal(small._cost[level], large._cost[level])
        assert np.array_equal(small._cached[level], large._cached[level])
    small.on_evict_many(keys)
    large.on_evict_many(keys)
    for level in SCHEMA.all_levels():
        assert np.array_equal(small._cost[level], large._cost[level])
        assert np.array_equal(small._cached[level], large._cached[level])


def test_default_crossover_routes_small_waves_scalar():
    """The default threshold (32) is what the admission path relies on:
    a per-query wave of a few chunks takes the scalar route."""
    store = CountStore(SCHEMA)
    assert store.batch_crossover == 32
    assert CostStore(
        SCHEMA, SizeEstimator(SCHEMA, total_base_tuples=500)
    ).batch_crossover == 32


def test_scalar_evict_path_validates_before_mutating():
    """The small-wave eviction mirrors the vectorised precondition: a
    bad wave raises WITHOUT applying any of its cascades."""
    store = CountStore(SCHEMA)
    base = SCHEMA.base_level
    store.on_insert_many([(base, 0)])
    snapshot = {
        level: store.counts_array(level).copy()
        for level in SCHEMA.all_levels()
    }
    with pytest.raises(ReproError, match="underflow"):
        # (base, 0) is evictable once, but the wave owes it twice.
        store.on_evict_many([(base, 0), (base, 0)])
    for level in SCHEMA.all_levels():
        assert np.array_equal(
            store.counts_array(level), snapshot[level]
        ), "failed wave must not leave a partially applied cascade"


def test_scalar_cost_evict_path_validates_before_mutating():
    sizes = SizeEstimator(SCHEMA, total_base_tuples=500)
    store = CostStore(SCHEMA, sizes, rel_tol=0.0)
    base = SCHEMA.base_level
    store.on_insert_many([(base, 0)])
    with pytest.raises(ReproError):
        store.on_evict_many([(base, 0), (base, 1)])  # chunk 1 not cached
