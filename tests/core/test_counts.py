"""Virtual count maintenance tests (Property 1, Lemma 2 — experiments E11/E12)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counts import CountStore
from repro.schema import apb_tiny_schema
from repro.util.errors import ReproError
from tests.helpers import oracle_computable


@pytest.fixture
def schema():
    return apb_tiny_schema()


def all_keys(schema):
    return [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]


def assert_property_1(schema, store, cached):
    """Count non-zero iff computable (the paper's Property 1), everywhere."""
    for level, number in all_keys(schema):
        expected = oracle_computable(schema, cached, level, number)
        assert store.is_computable(level, number) == expected, (
            level,
            number,
            cached,
        )


def test_empty_cache_counts_all_zero(schema):
    store = CountStore(schema)
    assert all(store.count(l, n) == 0 for l, n in all_keys(schema))
    assert store.num_entries() == sum(
        schema.num_chunks(l) for l in schema.all_levels()
    )


def test_single_base_chunk_insert(schema):
    store = CountStore(schema)
    store.on_insert(schema.base_level, 0)
    assert store.count(schema.base_level, 0) == 1
    assert_property_1(schema, store, {(schema.base_level, 0)})


def test_full_base_level_makes_everything_computable(schema):
    store = CountStore(schema)
    cached = set()
    base = schema.base_level
    for n in range(schema.num_chunks(base)):
        store.on_insert(base, n)
        cached.add((base, n))
    for level, number in all_keys(schema):
        assert store.is_computable(level, number)
    # Apex count: computable via all three parents (no direct presence).
    assert store.count(schema.apex_level, 0) == 3


def test_paper_figure4_counts():
    """Reproduce the count structure of the paper's Figure 4 / Example 4.

    Two dimensions with hierarchy size 1; level (1,1) has 4 chunks (2x2),
    (1,0) and (0,1) have 2 chunks, (0,0) has 1.  Cache contents chosen so
    the narrated facts hold: a base chunk present with count 1, a base
    chunk absent with count 0, a mid-level chunk *not* present yet counted
    computable through one parent, and the apex chunk present with count 3
    (presence + two successful parent paths).
    """
    from repro.schema import CubeSchema, Dimension

    schema = CubeSchema(
        [Dimension.flat("A", 4, 2), Dimension.flat("B", 4, 2)],
        bytes_per_tuple=20,
    )
    store = CountStore(schema)
    for level, number in [
        ((1, 1), 0),
        ((1, 1), 2),
        ((1, 1), 3),
        ((1, 0), 0),
        ((0, 1), 1),
        ((0, 0), 0),
    ]:
        store.on_insert(level, number)
    # Base level: counts are pure presence.
    assert [store.count((1, 1), n) for n in range(4)] == [1, 0, 1, 1]
    # (0,1) chunk 0 is NOT cached but computable via (1,1) chunks {0, 2}:
    # count 1 through one parent (the paper's narrated case).
    assert not store.is_computable((1, 1), 1)
    assert [store.count((0, 1), n) for n in range(2)] == [1, 1]
    assert [store.count((1, 0), n) for n in range(2)] == [1, 1]
    # Apex: present (+1) and both parent group-bys fully computable (+2).
    assert store.count((0, 0), 0) == 3


def test_insert_then_evict_restores_zero_state(schema):
    store = CountStore(schema)
    keys = [(schema.base_level, 0), ((1, 1, 1), 1), ((0, 1, 0), 0)]
    for level, number in keys:
        store.on_insert(level, number)
    for level, number in reversed(keys):
        store.on_evict(level, number)
    assert all(store.count(l, n) == 0 for l, n in all_keys(schema))


def test_evict_uncounted_chunk_raises(schema):
    store = CountStore(schema)
    with pytest.raises(ReproError, match="underflow"):
        store.on_evict(schema.base_level, 0)


def test_duplicate_insert_stacks_counts(schema):
    # The same chunk inserted twice (cache re-admission is guarded at the
    # store level, but CountStore itself just counts).
    store = CountStore(schema)
    store.on_insert(schema.base_level, 0)
    first = store.count(schema.base_level, 0)
    store.on_insert(schema.base_level, 0)
    assert store.count(schema.base_level, 0) == first + 1


def test_lemma2_update_bound(schema):
    """Lemma 2 (E12): inserting at level (l1..ln) updates at most
    n * prod(l_i + 1) counts."""
    n = schema.ndims
    for level in schema.all_levels():
        store = CountStore(schema)
        bound = n * math.prod(l + 1 for l in level)
        updates = store.on_insert(level, 0)
        assert updates <= bound, (level, updates, bound)


def test_insert_returns_update_count(schema):
    store = CountStore(schema)
    updates = store.on_insert(schema.apex_level, 0)
    assert updates == 1  # apex has no children
    assert store.total_updates == 1


@settings(max_examples=40, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(0, 10_000)),
        min_size=1,
        max_size=25,
    )
)
def test_property1_under_random_insert_evict(operations):
    """Property 1 holds after any interleaving of inserts and evictions."""
    schema = apb_tiny_schema()
    keys = [
        (level, number)
        for level in schema.all_levels()
        for number in range(schema.num_chunks(level))
    ]
    store = CountStore(schema)
    cached: set = set()
    for is_insert, pick in operations:
        if is_insert:
            candidates = [k for k in keys if k not in cached]
        else:
            candidates = sorted(cached)
        if not candidates:
            continue
        key = candidates[pick % len(candidates)]
        if is_insert:
            store.on_insert(*key)
            cached.add(key)
        else:
            store.on_evict(*key)
            cached.discard(key)
    assert_property_1(schema, store, cached)


def test_counts_array_view(schema):
    store = CountStore(schema)
    store.on_insert(schema.base_level, 0)
    arr = store.counts_array(schema.base_level)
    assert isinstance(arr, np.ndarray)
    assert arr[0] == 1
