"""Property suite: batched maintenance waves equal the scalar cascades.

``on_insert_many`` / ``on_evict_many`` replace N recursive per-chunk
cascades with one vectorised pass per lattice level — an optimisation
that must be *invisible*: after any interleaving of insert and evict
waves, a store driven by batched waves holds exactly the state of a
store driven by the scalar reference cascades (``scalar_on_insert`` /
``scalar_on_evict``) one key at a time.

For counts that means bitwise-equal count arrays AND the same
``total_updates`` charge (the paper's Table 2 metric).  For costs it
means bitwise-equal cost/cached arrays — guaranteed here by an
integer-valued size stub, so every path cost is an exact float64 sum —
with best-parent pointers equal or tied: at an exact cost tie the
scalar cascade keeps its historical pointer while the batched
re-minimisation takes the first strict minimum, and both are valid
least-cost paths.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostStore
from repro.core.counts import CountStore
from repro.schema import apb_tiny_schema

SCHEMA = apb_tiny_schema()
ALL_KEYS = [
    (level, number)
    for level in SCHEMA.all_levels()
    for number in range(SCHEMA.num_chunks(level))
]


class IntegerSizes:
    """Deterministic integer chunk sizes: path costs become exact small
    float64 sums, so batched and scalar cost arithmetic is bitwise equal
    regardless of summation order."""

    def chunk_tuples(self, level, number) -> int:
        return sum(level) * 7 + number % 5 + 1


@st.composite
def wave_schedules(draw):
    """A sequence of single-sign waves: each round inserts a fresh subset
    of non-resident chunks as one wave, then evicts a subset of resident
    chunks as one wave (waves may span several lattice levels)."""
    schedule = []
    resident: set = set()
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        available = sorted(k for k in ALL_KEYS if k not in resident)
        if available:
            indices = draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(available) - 1),
                    max_size=10,
                    unique=True,
                )
            )
            insert = [available[i] for i in indices]
            if insert:
                resident.update(insert)
                schedule.append(("insert", insert))
        residents = sorted(resident)
        if residents:
            indices = draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(residents) - 1),
                    max_size=8,
                    unique=True,
                )
            )
            evict = [residents[i] for i in indices]
            if evict:
                resident.difference_update(evict)
                schedule.append(("evict", evict))
    return schedule


def apply_scalar(store, op: str, keys) -> int:
    method = (
        store.scalar_on_insert if op == "insert" else store.scalar_on_evict
    )
    return sum(method(level, number) for level, number in keys)


def apply_batched(store, op: str, keys) -> int:
    # Force the vectorised wave path regardless of wave size: the oracle
    # comparison must exercise the batched machinery, not the scalar
    # small-wave shortcut the crossover would take for these tiny waves
    # (the crossover itself is covered by test_batch_crossover.py).
    store.batch_crossover = 0
    method = store.on_insert_many if op == "insert" else store.on_evict_many
    return method(keys)


@settings(max_examples=80, deadline=None)
@given(schedule=wave_schedules())
def test_batched_count_waves_equal_scalar_cascades(schedule):
    scalar = CountStore(SCHEMA)
    batched = CountStore(SCHEMA)
    for op, keys in schedule:
        scalar_updates = apply_scalar(scalar, op, keys)
        batched_updates = apply_batched(batched, op, keys)
        assert batched_updates == scalar_updates, (
            f"update charge diverged on {op} wave {keys}"
        )
        for level in SCHEMA.all_levels():
            assert np.array_equal(
                scalar.counts_array(level), batched.counts_array(level)
            ), f"counts diverged at level {level} after {op} wave {keys}"
    assert batched.total_updates == scalar.total_updates


def assert_best_equivalent(scalar: CostStore, batched: CostStore) -> None:
    """Pointers equal, or tied: each store's recorded pointer reaches its
    (identical) recorded least cost."""
    for level in SCHEMA.all_levels():
        differs = np.flatnonzero(scalar._best[level] != batched._best[level])
        for number in differs.tolist():
            for store in (scalar, batched):
                best = int(store._best[level][number])
                assert best >= 0, (
                    f"pointer sentinel mismatch at level {level} "
                    f"chunk {number}"
                )
                via = store._cost_via(
                    level, number, store._parents[level][best]
                )
                assert via == float(store._cost[level][number]), (
                    f"non-minimal best parent at level {level} "
                    f"chunk {number}"
                )


@settings(max_examples=60, deadline=None)
@given(schedule=wave_schedules())
def test_batched_cost_waves_equal_scalar_cascades(schedule):
    sizes = IntegerSizes()
    scalar = CostStore(SCHEMA, sizes, rel_tol=0.0)
    batched = CostStore(SCHEMA, sizes, rel_tol=0.0)
    for op, keys in schedule:
        apply_scalar(scalar, op, keys)
        apply_batched(batched, op, keys)
        for level in SCHEMA.all_levels():
            assert np.array_equal(
                scalar._cost[level], batched._cost[level]
            ), f"costs diverged at level {level} after {op} wave {keys}"
            assert np.array_equal(
                scalar._cached[level], batched._cached[level]
            ), f"cached flags diverged at level {level}"
        assert_best_equivalent(scalar, batched)


@settings(max_examples=40, deadline=None)
@given(schedule=wave_schedules())
def test_batched_waves_equal_rebuild_from_resident_set(schedule):
    """Order independence, the stronger form: after any schedule the
    batched store equals a store rebuilt from the final resident set in
    one insertion wave."""
    store = CountStore(SCHEMA)
    resident: set = set()
    for op, keys in schedule:
        apply_batched(store, op, keys)
        if op == "insert":
            resident.update(keys)
        else:
            resident.difference_update(keys)
    rebuilt = CountStore(SCHEMA)
    rebuilt.on_insert_many(sorted(resident))
    for level in SCHEMA.all_levels():
        assert np.array_equal(
            store.counts_array(level), rebuilt.counts_array(level)
        )
