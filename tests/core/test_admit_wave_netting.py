"""Regression: ``_admit_wave`` netting under the evict/insert/evict pattern.

Found by the chaos suite (``tests/faults/test_chaos_properties.py``): a
chunk resident *before* an admission wave can be displaced by an early
item, re-admitted by its own wave item, then displaced again by a later
item.  Set-based netting saw the key in both the inserted and evicted
lists and cancelled it out of both cascades, stranding a Count/Cost
entry for a chunk that is no longer resident — Property 1 broken until
the next insert of that chunk.  Netting now follows each key's ordered
event stream, so start/end residency is computed exactly.

Sequentially a wave never contains an already-resident chunk (the lookup
would have been a hit), so the wave is driven directly here; under
concurrent serving a racing query creates the same shape between one
query's planning and its admission.
"""

from __future__ import annotations

import numpy as np

from repro import AggregateCache, BackendDatabase, CostModel, CountStore


def fetch_chunk(backend, level, number, compute_cost):
    chunks, _ = backend.fetch([(level, number)])
    (chunk,) = chunks
    chunk.compute_cost = compute_cost
    return chunk


def assert_counts_match_resident_set(manager):
    rebuilt = CountStore(manager.schema)
    rebuilt.on_insert_many(list(manager.cache.resident_keys()))
    for level in manager.schema.all_levels():
        assert np.array_equal(
            manager.strategy.counts.counts_array(level),
            rebuilt.counts_array(level),
        ), f"count store diverged at level {level}"


def test_evict_insert_evict_key_is_cascaded_out(tiny_schema, tiny_facts):
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    level = tiny_schema.base_level
    numbers = [
        n
        for n in backend.base_chunk_numbers()
        if backend.base_chunk(n).size_tuples > 0
    ]
    assert len(numbers) >= 3, "test needs three non-empty base chunks"
    x_num, a_num, b_num = numbers[:3]

    sizes = [
        backend.base_chunk(n).size_bytes(tiny_schema.bytes_per_tuple)
        for n in (x_num, a_num, b_num)
    ]
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=max(sizes),  # room for exactly one of the three
        strategy="vcmc",
        policy="benefit",
        preload=False,
    )
    # X is resident before the wave (as if a racing query admitted it).
    manager._insert(fetch_chunk(backend, level, x_num, 1.0), benefit=1.0)
    assert manager.cache.contains(level, x_num)
    assert manager.strategy.counts.count(level, x_num) == 1

    # The wave: A displaces X, X re-admits itself displacing A, B
    # displaces X again.  Rising benefits make each admission certain.
    wave = [
        fetch_chunk(backend, level, a_num, 2.0),
        fetch_chunk(backend, level, x_num, 3.0),
        fetch_chunk(backend, level, b_num, 4.0),
    ]
    manager._admit_wave(wave)

    assert sorted(manager.cache.resident_keys()) == [(level, b_num)]
    # The regression: X's count stayed at 1 even though X is gone.
    assert manager.strategy.counts.count(level, x_num) == 0
    assert manager.strategy.counts.count(level, b_num) == 1
    assert_counts_match_resident_set(manager)
    # Cost-store cached flags agree with the resident set too.
    cached = {
        (lvl, int(n))
        for lvl in tiny_schema.all_levels()
        for n in np.flatnonzero(manager.strategy.costs._cached[lvl])
    }
    assert cached == {(level, b_num)}


def test_plain_waves_net_exactly_as_before(tiny_schema, tiny_facts):
    # The common patterns ([insert], [evict], [insert, evict],
    # [evict, insert]) must net identically to the old set logic.
    backend = BackendDatabase(tiny_schema, tiny_facts, CostModel())
    level = tiny_schema.base_level
    numbers = [
        n
        for n in backend.base_chunk_numbers()
        if backend.base_chunk(n).size_tuples > 0
    ]
    x_num, a_num = numbers[:2]
    sizes = [
        backend.base_chunk(n).size_bytes(tiny_schema.bytes_per_tuple)
        for n in (x_num, a_num)
    ]
    manager = AggregateCache(
        tiny_schema,
        backend,
        capacity_bytes=max(sizes),
        strategy="vcmc",
        policy="benefit",
        preload=False,
    )
    # [insert]: plain admission.
    manager._admit_wave([fetch_chunk(backend, level, x_num, 1.0)])
    assert manager.strategy.counts.count(level, x_num) == 1
    # [evict] + [insert]: displacement by a better chunk.
    manager._admit_wave([fetch_chunk(backend, level, a_num, 2.0)])
    assert manager.strategy.counts.count(level, x_num) == 0
    assert manager.strategy.counts.count(level, a_num) == 1
    # [evict, insert] on A (it re-admits itself after being displaced):
    # net zero for A, X ends up gone again.
    manager._admit_wave(
        [
            fetch_chunk(backend, level, x_num, 3.0),
            fetch_chunk(backend, level, a_num, 4.0),
        ]
    )
    assert sorted(manager.cache.resident_keys()) == [(level, a_num)]
    assert_counts_match_resident_set(manager)
