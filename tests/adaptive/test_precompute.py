"""AdaptivePrecomputer: warmup, pinning, drift-following and budget."""

from __future__ import annotations

import pytest

from repro import BackendDatabase, CostModel, generate_fact_table
from repro.adaptive.precompute import AdaptivePrecomputer
from repro.adaptive.tracker import WorkloadTracker
from repro.core.manager import AggregateCache
from repro.obs import Observability
from repro.schema import apb_tiny_schema
from repro.workload.query import Query

SCHEMA = apb_tiny_schema()
FACTS = generate_fact_table(SCHEMA, num_tuples=300, seed=7)
BACKEND = BackendDatabase(SCHEMA, FACTS, CostModel())
BASE = SCHEMA.base_level
APEX = SCHEMA.apex_level


def _setup(
    capacity: int = 1 << 20,
    obs: Observability | None = None,
    **kwargs,
):
    manager = AggregateCache(
        SCHEMA,
        BACKEND,
        capacity_bytes=capacity,
        strategy="vcmc",
        policy="benefit",
        preload=False,
        obs=obs,
    )
    tracker = WorkloadTracker(
        SCHEMA, manager.sizes, half_life=kwargs.pop("half_life", 8.0)
    )
    adaptive = AdaptivePrecomputer(manager, tracker=tracker, **kwargs)
    return manager, adaptive


def _drive(adaptive, level, count):
    for _ in range(count):
        adaptive.note_query(Query.full_level(SCHEMA, level))


def test_warmup_blocks_early_promotion():
    _, adaptive = _setup(warmup=16)
    _drive(adaptive, BASE, 15)
    actions = adaptive.run_idle_cycle()
    assert not actions.changed
    assert adaptive.promotions == 0
    _drive(adaptive, BASE, 1)
    assert adaptive.run_idle_cycle().promoted


def test_promotion_pins_resident_chunks():
    manager, adaptive = _setup(warmup=1)
    _drive(adaptive, BASE, 8)
    actions = adaptive.run_idle_cycle()
    assert BASE in actions.promoted
    assert BASE in adaptive.pinned_levels
    pinned = [
        manager.cache.entry(BASE, number)
        for number in range(SCHEMA.num_chunks(BASE))
    ]
    assert pinned and all(
        entry is not None and entry.resident and entry.pinned
        for entry in pinned
    )


def test_pinned_chunks_survive_churn():
    # Capacity fits the base level plus very little else, so admitting
    # every other level creates real eviction pressure.  Promotion pins
    # only what actually landed (admission can reject under pressure);
    # every one of THOSE must still be resident after the churn.
    manager, adaptive = _setup(warmup=1, budget_fraction=0.8)
    base_bytes = manager.sizes.level_bytes(BASE)
    manager.cache.capacity_bytes = int(base_bytes * 1.5)
    _drive(adaptive, BASE, 8)
    assert BASE in adaptive.run_idle_cycle().promoted
    pinned_numbers = list(adaptive._pinned[BASE])
    assert pinned_numbers
    for level in SCHEMA.all_levels():
        if level != BASE:
            manager.query(Query.full_level(SCHEMA, level))
    for number in pinned_numbers:
        entry = manager.cache.entry(BASE, number)
        assert entry is not None and entry.resident and entry.pinned


def test_demotion_unpins_without_evicting():
    # Workload drifts from level A to an incomparable level B, so A's
    # demand decays to noise.  The pin budget fits A alone but not the
    # base level, and after the drift B's denser ancestors fill it
    # before A's turn comes — A falls out of the winner set.  The cache
    # itself is huge: demotion must leave A's chunks resident, merely
    # unpinned (reclaim belongs to the replacement policy).
    a = (SCHEMA.dimensions[0].height, SCHEMA.dimensions[1].height, 0)
    b = (0, 0, SCHEMA.dimensions[2].height)
    manager, adaptive = _setup(
        warmup=1,
        half_life=2.0,
        stickiness=1.0,
        budget_fraction=160 / (1 << 20),
    )
    _drive(adaptive, a, 8)
    assert a in adaptive.run_idle_cycle().promoted
    a_numbers = list(adaptive._pinned[a])
    assert a_numbers
    _drive(adaptive, b, 64)
    actions = adaptive.run_idle_cycle()
    assert a in actions.demoted
    assert a not in adaptive.pinned_levels
    for number in a_numbers:
        entry = manager.cache.entry(a, number)
        assert entry is not None and entry.resident
        assert not entry.pinned


def test_drift_promotes_the_new_hot_level():
    _, adaptive = _setup(warmup=1, half_life=2.0, stickiness=1.0)
    _drive(adaptive, BASE, 4)
    first = adaptive.run_idle_cycle()
    assert BASE in first.promoted
    _drive(adaptive, APEX, 64)
    second = adaptive.run_idle_cycle()
    assert APEX in second.winners
    assert APEX in adaptive.pinned_levels
    assert adaptive.promotions >= 2


def test_stickiness_keeps_near_tied_incumbent():
    _, adaptive = _setup(warmup=1, half_life=1e9, stickiness=2.0)
    # Make the cache only big enough for one of the two contenders.
    manager = adaptive.manager
    manager.cache.capacity_bytes = int(
        manager.sizes.level_bytes(BASE) / adaptive.budget_fraction
    ) + 1
    _drive(adaptive, BASE, 10)
    assert BASE in adaptive.run_idle_cycle().promoted
    # A challenger with a slightly higher raw score must not displace
    # the incumbent while the stickiness factor covers the gap.
    _drive(adaptive, BASE, 2)
    actions = adaptive.run_idle_cycle()
    assert not actions.demoted
    assert BASE in adaptive.pinned_levels


def test_budget_fraction_bounds_the_pinned_set():
    manager, adaptive = _setup(warmup=1, budget_fraction=0.3)
    for level in SCHEMA.all_levels():
        _drive(adaptive, level, 2)
    adaptive.run_idle_cycle()
    budget = 0.3 * manager.cache.capacity_bytes
    used = sum(
        manager.sizes.level_bytes(level)
        for level in adaptive.pinned_levels
    )
    assert used <= budget


def test_obs_counters_track_cycles_and_actions():
    obs = Observability.in_memory()
    a = (SCHEMA.dimensions[0].height, SCHEMA.dimensions[1].height, 0)
    b = (0, 0, SCHEMA.dimensions[2].height)
    _, adaptive = _setup(
        obs=obs,
        warmup=1,
        half_life=2.0,
        stickiness=1.0,
        budget_fraction=160 / (1 << 20),
    )
    _drive(adaptive, a, 8)
    adaptive.run_idle_cycle()
    _drive(adaptive, b, 64)
    adaptive.run_idle_cycle()
    counters = obs.snapshot()["counters"]
    assert counters["adaptive.cycles"] == 2
    assert adaptive.promotions >= 2 and adaptive.demotions >= 1
    assert counters["adaptive.promotions"] == adaptive.promotions
    assert counters["adaptive.demotions"] == adaptive.demotions


@pytest.mark.parametrize(
    "kwargs",
    [{"budget_fraction": 0.0}, {"budget_fraction": 1.5}, {"stickiness": 0.5}],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        _setup(warmup=1, **kwargs)


def test_reconcile_pins_drops_forced_evictions():
    # Regression: invalidate_base_chunks ignores pins, so a refresh used
    # to leave _pinned claiming chunks the cache no longer holds.  A
    # level that lost everything must be forgotten entirely.
    manager, adaptive = _setup(warmup=1)
    _drive(adaptive, BASE, 8)
    assert BASE in adaptive.run_idle_cycle().promoted
    evicted = manager.invalidate_base_chunks(
        list(range(SCHEMA.num_chunks(BASE)))
    )
    assert evicted > 0
    assert BASE in adaptive._pinned  # the stale bookkeeping
    dropped = adaptive.reconcile_pins()
    assert dropped > 0
    assert BASE not in adaptive.pinned_levels
    assert adaptive.reconcile_pins() == 0  # idempotent


def test_reconcile_pins_keeps_partial_survivors():
    manager, adaptive = _setup(warmup=1)
    _drive(adaptive, BASE, 8)
    adaptive.run_idle_cycle()
    before = list(adaptive._pinned[BASE])
    victim = before[0]
    manager.invalidate_base_chunks([victim])
    dropped = adaptive.reconcile_pins()
    assert dropped == 1
    assert adaptive._pinned[BASE] == [n for n in before if n != victim]
    for number in adaptive._pinned[BASE]:
        entry = manager.cache.entry(BASE, number)
        assert entry is not None and entry.resident and entry.pinned


def test_idle_cycle_repromotes_after_forced_eviction():
    # With the stale bookkeeping gone, the very next cycle re-promotes
    # the still-hot level instead of believing it already pinned.
    manager, adaptive = _setup(warmup=1)
    _drive(adaptive, BASE, 8)
    adaptive.run_idle_cycle()
    manager.invalidate_base_chunks(list(range(SCHEMA.num_chunks(BASE))))
    _drive(adaptive, BASE, 4)
    actions = adaptive.run_idle_cycle()
    assert BASE in actions.promoted
    assert all(
        (entry := manager.cache.entry(BASE, n)) is not None
        and entry.resident
        and entry.pinned
        for n in adaptive._pinned[BASE]
    )


def test_reconcile_pins_obs_counter():
    obs = Observability.in_memory()
    manager, adaptive = _setup(warmup=1, obs=obs)
    _drive(adaptive, BASE, 8)
    adaptive.run_idle_cycle()
    pinned = len(adaptive._pinned[BASE])
    manager.invalidate_base_chunks(list(range(SCHEMA.num_chunks(BASE))))
    adaptive.reconcile_pins()
    counters = obs.snapshot()["counters"]
    assert counters["adaptive.stale_pins_dropped"] == pinned


def test_concurrent_refresh_reconciles_pins():
    # Through the service facade: a delta-mode refresh patches pinned
    # chunks in place (pins survive), while an evict-mode invalidation
    # reconciles the bookkeeping under the same write lock.
    from repro import ConcurrentAggregateCache

    schema = apb_tiny_schema()
    facts = generate_fact_table(schema, num_tuples=300, seed=7)
    backend = BackendDatabase(schema, facts, CostModel())
    manager = AggregateCache(
        schema,
        backend,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        policy="benefit",
        preload=False,
    )
    tracker = WorkloadTracker(schema, manager.sizes, half_life=8.0)
    adaptive = AdaptivePrecomputer(manager, tracker=tracker, warmup=1)
    service = ConcurrentAggregateCache(manager, adaptive=adaptive)
    base = schema.base_level
    for _ in range(8):
        adaptive.note_query(Query.full_level(schema, base))
    assert base in service.idle_tick().promoted
    pinned = list(adaptive._pinned[base])

    delta = generate_fact_table(schema, num_tuples=40, seed=9)
    outcome = service.refresh_from_backend(delta)
    assert outcome.mode == "delta" and outcome.patched > 0
    assert adaptive._pinned[base] == pinned  # patched in place, pins intact
    for number in pinned:
        entry = manager.cache.entry(base, number)
        assert entry is not None and entry.resident and entry.pinned

    more = generate_fact_table(schema, num_tuples=40, seed=10)
    service.refresh_from_backend(more, mode="evict")
    assert base not in adaptive.pinned_levels or all(
        (entry := manager.cache.entry(base, n)) is not None and entry.resident
        for n in adaptive._pinned.get(base, [])
    )
