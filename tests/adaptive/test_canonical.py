"""Unit tests for the canonicalization layer's three collapses."""

from __future__ import annotations

import pytest

from repro.adaptive.canonical import (
    AVG,
    COUNT,
    SUM,
    CanonicalQuery,
    QuerySpec,
    aggregate_answer,
    canonicalize,
)
from repro.schema import apb_tiny_schema
from repro.util.errors import SchemaError
from repro.workload.query import Query

SCHEMA = apb_tiny_schema()
DIMS = [dim.name for dim in SCHEMA.dimensions]


def test_commuted_group_by_dimensions_share_a_key():
    spec_a = QuerySpec(group_by=((DIMS[0], 1), (DIMS[1], 1)))
    spec_b = QuerySpec(group_by=((DIMS[1], 1), (DIMS[0], 1)))
    assert canonicalize(SCHEMA, spec_a).key == canonicalize(SCHEMA, spec_b).key


def test_unnamed_dimensions_are_fully_aggregated():
    canonical = canonicalize(SCHEMA, QuerySpec(group_by=((DIMS[0], 1),)))
    assert canonical.level == (1,) + (0,) * (SCHEMA.ndims - 1)
    # and the ranges cover the whole chunk grid
    assert canonical.chunk_ranges == tuple(
        (0, extent) for extent in SCHEMA.chunk_shape(canonical.level)
    )


def test_empty_spec_is_the_apex():
    canonical = canonicalize(SCHEMA, QuerySpec())
    assert canonical.level == SCHEMA.apex_level


def test_contained_ranges_snap_to_one_key():
    """Two selections inside the same covering chunks canonicalize
    identically — the containment collapse."""
    dim = SCHEMA.dimensions[0]
    level = dim.height
    lo, hi = dim.chunk_range(level, 0)
    if hi - lo < 2:
        pytest.skip("first chunk too small to contain two distinct ranges")
    wide = QuerySpec(
        group_by=((dim.name, level),),
        cell_ranges=((dim.name, lo, hi),),
    )
    narrow = QuerySpec(
        group_by=((dim.name, level),),
        cell_ranges=((dim.name, lo, lo + 1),),
    )
    assert (
        canonicalize(SCHEMA, wide).key == canonicalize(SCHEMA, narrow).key
    )


def test_aggregate_is_erased_from_the_key():
    for aggregate in (SUM, COUNT, AVG):
        spec = QuerySpec(
            group_by=((DIMS[0], 1),), aggregate=aggregate
        )
        assert (
            canonicalize(SCHEMA, spec).key
            == canonicalize(SCHEMA, QuerySpec(group_by=((DIMS[0], 1),))).key
        )


def test_to_query_round_trip():
    canonical = canonicalize(SCHEMA, QuerySpec(group_by=((DIMS[0], 1),)))
    query = canonical.to_query()
    assert isinstance(query, Query)
    assert query.level == canonical.level
    assert query.chunk_ranges == canonical.chunk_ranges
    keys = canonical.chunk_keys(SCHEMA)
    assert keys == [
        (canonical.level, n) for n in query.chunk_numbers(SCHEMA)
    ]


def test_canonical_query_is_hashable_single_flight_key():
    a = CanonicalQuery((0,) * SCHEMA.ndims, ((0, 1),) * SCHEMA.ndims)
    b = CanonicalQuery((0,) * SCHEMA.ndims, ((0, 1),) * SCHEMA.ndims)
    assert a == b and hash(a.key) == hash(b.key)


@pytest.mark.parametrize(
    "bad",
    [
        QuerySpec(group_by=(("nope", 0),)),
        QuerySpec(group_by=((DIMS[0], 99),)),
        QuerySpec(group_by=((DIMS[0], 0), (DIMS[0], 1))),
        QuerySpec(cell_ranges=(("nope", 0, 1),)),
        QuerySpec(aggregate="median"),
    ],
)
def test_invalid_specs_raise(bad):
    with pytest.raises(SchemaError):
        canonicalize(SCHEMA, bad)


def test_aggregate_answer_decomposes_avg():
    class FakeChunk:
        def __init__(self, values, counts):
            import numpy as np

            self.values = np.asarray(values, dtype=float)
            self.counts = np.asarray(counts, dtype=np.int64)

    chunks = [FakeChunk([10.0, 20.0], [2, 3]), FakeChunk([30.0], [5])]
    assert aggregate_answer(chunks, SUM) == 60.0
    assert aggregate_answer(chunks, COUNT) == 10.0
    assert aggregate_answer(chunks, AVG) == 6.0
    assert aggregate_answer([], AVG) == 0.0
