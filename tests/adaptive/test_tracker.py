"""WorkloadTracker: decay arithmetic, demand coverage and scoring."""

from __future__ import annotations

import threading

import pytest

from repro.adaptive.tracker import WorkloadTracker
from repro.cache.preload import benefit_density
from repro.core.sizes import SizeEstimator
from repro.schema import apb_tiny_schema

SCHEMA = apb_tiny_schema()
SIZES = SizeEstimator(SCHEMA, total_base_tuples=500)
BASE = SCHEMA.base_level
APEX = SCHEMA.apex_level


def _tracker(half_life: float = 8.0) -> WorkloadTracker:
    return WorkloadTracker(SCHEMA, SIZES, half_life=half_life)


def test_mass_halves_after_half_life_idle_records():
    tracker = _tracker(half_life=8.0)
    tracker.record(BASE)
    assert tracker.mass(BASE) == pytest.approx(1.0)
    # 8 queries elsewhere = one half-life of idleness for BASE.
    for _ in range(8):
        tracker.record(APEX)
    assert tracker.mass(BASE) == pytest.approx(0.5)
    assert tracker.queries_recorded == 9


def test_record_accumulates_on_top_of_decayed_mass():
    tracker = _tracker(half_life=8.0)
    tracker.record(BASE)
    for _ in range(8):
        tracker.record(APEX)
    tracker.record(BASE)
    # decayed 1.0 -> ~0.5 across the idle stretch, then one more decay
    # step for the new tick, plus the fresh unit weight.
    assert tracker.mass(BASE) == pytest.approx(
        0.5 * tracker._decay + 1.0
    )


def test_unrecorded_level_has_zero_mass():
    assert _tracker().mass(BASE) == 0.0


def test_demand_covers_componentwise_lower_levels():
    tracker = _tracker(half_life=1e9)  # effectively no decay
    tracker.record(APEX)
    tracker.record(BASE)
    # The base level can answer both recorded levels; the apex only
    # itself.
    assert tracker.demand(BASE) == pytest.approx(2.0)
    assert tracker.demand(APEX) == pytest.approx(1.0)


def test_demand_excludes_incomparable_levels():
    if SCHEMA.ndims < 2:
        pytest.skip("needs two dimensions for incomparable levels")
    a = (BASE[0],) + (0,) * (SCHEMA.ndims - 1)
    b = (0, BASE[1]) + (0,) * (SCHEMA.ndims - 2)
    tracker = _tracker(half_life=1e9)
    tracker.record(a)
    assert tracker.demand(b) == 0.0


def test_score_is_demand_times_benefit_density():
    tracker = _tracker(half_life=1e9)
    tracker.record(BASE)
    tracker.record(APEX)
    for level in (BASE, APEX):
        assert tracker.score(level) == pytest.approx(
            tracker.demand(level) * benefit_density(SIZES, level)
        )
    snapshot = tracker.scores()
    assert set(snapshot) == set(SCHEMA.all_levels())
    assert snapshot[BASE] == pytest.approx(tracker.score(BASE))


def test_invalid_half_life_rejected():
    with pytest.raises(ValueError):
        _tracker(half_life=0.0)


def test_concurrent_records_are_not_lost():
    tracker = _tracker(half_life=1e9)
    per_thread = 200

    def hammer():
        for _ in range(per_thread):
            tracker.record(BASE)

    threads = [threading.Thread(target=hammer) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert tracker.queries_recorded == 6 * per_thread
    # Negligible decay at this half-life: all mass survives.
    assert tracker.mass(BASE) == pytest.approx(6 * per_thread, rel=1e-3)
