"""Hypothesis round-trip suite for the canonicalizer.

The property the canonical key exists to guarantee: **canonical-key
equality implies bit-identical answers**.  Pairs of independently
spelled but equivalent specs — commuted group-by order, different
contained ranges snapping to the same chunks, any aggregate — must
canonicalize to one key, and executing either spelling through the
sequential manager or a 6-worker concurrent service must return chunks
byte-identical to the no-cache path (the backend's own computation).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BackendDatabase, CostModel, generate_fact_table
from repro.adaptive.canonical import (
    AGGREGATES,
    AVG,
    COUNT,
    SUM,
    QuerySpec,
    aggregate_answer,
    canonicalize,
)
from repro.core.manager import AggregateCache
from repro.schema import apb_tiny_schema
from repro.service.concurrent import ConcurrentAggregateCache

SCHEMA = apb_tiny_schema()
FACTS = generate_fact_table(SCHEMA, num_tuples=300, seed=99)
BACKEND = BackendDatabase(SCHEMA, FACTS, CostModel())


def _manager() -> AggregateCache:
    return AggregateCache(
        SCHEMA,
        BACKEND,
        capacity_bytes=1 << 20,
        strategy="vcmc",
        policy="benefit",
        preload=False,
    )


# Shared across examples on purpose: cache state evolves between
# examples, and bit-identity must hold REGARDLESS of what is resident.
SEQUENTIAL = _manager()
SERVICE = ConcurrentAggregateCache(_manager())


@st.composite
def equivalent_spec_pairs(draw):
    """Two spellings of one semantic query."""
    levels = [
        draw(st.integers(0, dim.height)) for dim in SCHEMA.dimensions
    ]

    def cell_range(dim, level, chunk_lo, chunk_hi):
        """Any ordinal range whose outward snap is [chunk_lo, chunk_hi)."""
        lo_lo, lo_hi = dim.chunk_range(level, chunk_lo)
        hi_lo, hi_hi = dim.chunk_range(level, chunk_hi - 1)
        lo = draw(st.integers(lo_lo, lo_hi - 1))
        hi = draw(st.integers(max(hi_lo, lo), hi_hi - 1)) + 1
        return (dim.name, lo, hi)

    ranges_a, ranges_b = [], []
    for dim, level in zip(SCHEMA.dimensions, levels):
        num_chunks = dim.num_chunks(level)
        chunk_lo = draw(st.integers(0, num_chunks - 1))
        chunk_hi = draw(st.integers(chunk_lo + 1, num_chunks))
        ranges_a.append(cell_range(dim, level, chunk_lo, chunk_hi))
        ranges_b.append(cell_range(dim, level, chunk_lo, chunk_hi))

    indices = list(range(SCHEMA.ndims))
    order_a = draw(st.permutations(indices))
    order_b = draw(st.permutations(indices))

    def spec(order, ranges, aggregate):
        return QuerySpec(
            group_by=tuple(
                (SCHEMA.dimensions[i].name, levels[i]) for i in order
            ),
            cell_ranges=tuple(ranges[i] for i in order),
            aggregate=aggregate,
        )

    return (
        spec(order_a, ranges_a, draw(st.sampled_from(AGGREGATES))),
        spec(order_b, ranges_b, draw(st.sampled_from(AGGREGATES))),
    )


def _reference_chunks(canonical) -> dict[int, object]:
    """The no-cache path: every chunk computed directly by the backend."""
    return {
        number: BACKEND.compute_chunk(canonical.level, number)
        for number in canonical.to_query().chunk_numbers(SCHEMA)
    }


def _assert_bit_identical(result, reference) -> None:
    got = {chunk.number: chunk for chunk in result.chunks}
    assert got.keys() == reference.keys()
    for number, chunk in got.items():
        expected = reference[number]
        assert chunk.values.dtype == expected.values.dtype
        assert np.array_equal(chunk.values, expected.values)
        assert np.array_equal(chunk.counts, expected.counts)
        for axis, expected_axis in zip(chunk.coords, expected.coords):
            assert np.array_equal(axis, expected_axis)


@settings(max_examples=25, deadline=None)
@given(pair=equivalent_spec_pairs())
def test_equal_keys_imply_bit_identical_answers(pair):
    spec_a, spec_b = pair
    canonical_a = canonicalize(SCHEMA, spec_a)
    canonical_b = canonicalize(SCHEMA, spec_b)
    assert canonical_a.key == canonical_b.key, (
        "equivalent spellings must canonicalize to one key"
    )

    reference = _reference_chunks(canonical_a)
    # Sequential manager, both spellings.
    for spec in (spec_a, spec_b):
        _assert_bit_identical(SEQUENTIAL.query_spec(spec), reference)
    # Concurrent service: 6 workers racing the same canonical query
    # (the single-flight table dedupes the backend fetches) plus the
    # spec entry point.
    outcomes = SERVICE.serve([canonical_a.to_query()] * 6, workers=6)
    for outcome in outcomes:
        _assert_bit_identical(outcome, reference)
    _assert_bit_identical(SERVICE.query_spec(spec_b), reference)


@settings(max_examples=25, deadline=None)
@given(pair=equivalent_spec_pairs())
def test_avg_decomposes_as_sum_over_count(pair):
    spec, _ = pair
    result = SEQUENTIAL.query_spec(spec)
    total = aggregate_answer(result.chunks, SUM)
    count = aggregate_answer(result.chunks, COUNT)
    avg = aggregate_answer(result.chunks, AVG)
    assert avg == (total / count if count else 0.0)
